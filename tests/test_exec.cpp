// Parallel execution runtime tests (DESIGN.md §8): thread-pool lifecycle,
// the determinism contract of parallel_for / fork_stream / metrics shard
// merging across thread counts, and parallel-vs-sequential equality for
// the wired subsystems (GR sweeps, the generic solver, chaos schedule
// sweeps).  The ExecSmoke suite is the `exec_smoke` ctest entry and the
// tsan-exec-smoke preset filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "algebra/gr_path_algebra.hpp"
#include "chaos/sweep.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "paper_networks.hpp"
#include "routecomp/generic_solver.hpp"
#include "routecomp/gr_sweep.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace dragon::exec {
namespace {

using algebra::GrClass;
using algebra::GrPathAlgebra;
using prefix::Prefix;
using topology::NodeId;
using F1 = dragon::testing::Figure1;
using F2 = dragon::testing::Figure2;

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

constexpr algebra::Attr kCust = GrPathAlgebra::make(GrClass::kCustomer, 0);

// ---------------------------------------------------------------------------
// ThreadPool lifecycle
// ---------------------------------------------------------------------------

TEST(ExecSmoke, ShutdownDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2u);
    // The first tasks sleep so later submissions pile up in the queue;
    // graceful shutdown must still run every one of them.
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.shutdown();
    EXPECT_EQ(done.load(), 64);
    pool.shutdown();  // idempotent
  }  // destructor after explicit shutdown is a no-op
  EXPECT_EQ(done.load(), 64);
}

TEST(ExecSmoke, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] {}), std::logic_error);
}

TEST(ExecSmoke, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("task failed"); });
  auto good = pool.submit([] {});
  EXPECT_THROW(bad.get(), std::runtime_error);
  good.get();  // the worker survives a throwing task
  auto after = pool.submit([] {});
  after.get();
}

TEST(ExecSmoke, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ExecSmoke, PoolCapRespectsHardware) {
  // cap_to_hardware clamps the spawned workers but keeps the asked-for
  // count for reporting; without the option the pool spawns exactly what
  // was requested (tests rely on real oversubscription for interleaving).
  ThreadPool capped(4096, PoolOptions{.cap_to_hardware = true});
  EXPECT_EQ(capped.requested(), 4096u);
  EXPECT_EQ(capped.size(),
            std::min<std::size_t>(4096, ThreadPool::default_thread_count()));

  ThreadPool uncapped(2);
  EXPECT_EQ(uncapped.requested(), 2u);
  EXPECT_EQ(uncapped.size(), 2u);
}

// ---------------------------------------------------------------------------
// static_chunks
// ---------------------------------------------------------------------------

TEST(ExecSmoke, StaticChunksPartitionTheRange) {
  for (const std::size_t n : {0u, 1u, 7u, 64u, 65u, 1000u}) {
    for (const std::size_t chunks : {1u, 3u, 64u, 2000u}) {
      const auto ranges = static_chunks(n, chunks);
      std::size_t covered = 0, expect_begin = 0;
      for (const auto& [begin, end] : ranges) {
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LT(begin, end);
        covered += end - begin;
        expect_begin = end;
      }
      EXPECT_EQ(covered, n);
      if (n > 0) {
        EXPECT_EQ(ranges.size(), std::min(n, std::max<std::size_t>(1, chunks)));
        // Near-equal sizes: max - min <= 1.
        std::size_t lo = n, hi = 0;
        for (const auto& [begin, end] : ranges) {
          lo = std::min(lo, end - begin);
          hi = std::max(hi, end - begin);
        }
        EXPECT_LE(hi - lo, 1u);
      }
    }
  }
}

TEST(ExecSmoke, StaticChunksDegenerateCases) {
  // n == 0: always empty, whatever the chunk request (including 0).
  EXPECT_TRUE(static_chunks(0, 0).empty());
  EXPECT_TRUE(static_chunks(0, 1).empty());
  EXPECT_TRUE(static_chunks(0, 16).empty());

  // chunks == 0 clamps up to one chunk covering the whole range.
  const auto whole = static_chunks(5, 0);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0].first, 0u);
  EXPECT_EQ(whole[0].second, 5u);

  // n < chunks: n unit chunks, never an empty chunk.
  const auto unit = static_chunks(3, 16);
  ASSERT_EQ(unit.size(), 3u);
  for (std::size_t i = 0; i < unit.size(); ++i) {
    EXPECT_EQ(unit[i].first, i);
    EXPECT_EQ(unit[i].second, i + 1);
  }
}

// ---------------------------------------------------------------------------
// Rng fork_stream
// ---------------------------------------------------------------------------

TEST(ExecSmoke, ForkStreamIsPureAndPerStream) {
  const util::Rng base(5);
  util::Rng f1 = base.fork_stream(3);
  util::Rng f2 = base.fork_stream(3);
  util::Rng other = base.fork_stream(4);
  bool differs = false;
  for (int i = 0; i < 50; ++i) {
    const auto v = f1();
    EXPECT_EQ(v, f2());
    differs |= v != other();
  }
  EXPECT_TRUE(differs);

  // fork_stream must not advance the parent: a fresh Rng with the same
  // seed draws the identical sequence afterwards.
  util::Rng used(5);
  (void)used.fork_stream(0);
  (void)used.fork_stream(77);
  util::Rng fresh(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(used(), fresh());
}

// ---------------------------------------------------------------------------
// parallel_for determinism (RNG streams + metrics shards)
// ---------------------------------------------------------------------------

struct ParallelRun {
  std::vector<std::uint64_t> values;
  std::string metrics_json;
};

ParallelRun run_stochastic_loop(ThreadPool* pool, std::size_t n) {
  ParallelRun run;
  run.values.assign(n, 0);
  obs::MetricsRegistry sink;
  ParallelOptions opts;
  opts.chunks = 16;  // fixed: must not depend on the thread count
  opts.seed = 99;
  opts.metrics_sink = &sink;
  parallel_for(
      pool, n,
      [&run](std::size_t i, TaskContext& ctx) {
        const std::uint64_t draw = ctx.rng();
        run.values[i] = draw ^ (i * 0x9E3779B97F4A7C15ULL);
        ctx.metrics->counter("exec.test.items")->inc();
        ctx.metrics->histogram("exec.test.low3")->observe(draw & 7);
        ctx.metrics->gauge("exec.test.last_chunk")
            ->set(static_cast<double>(ctx.chunk));
        // Accumulating gauge: restarts per chunk (fresh-shard semantics),
        // so the merged value is the LAST chunk's item count — identical
        // for any thread count or shard layout.
        ctx.metrics->gauge("exec.test.chunk_items")->add(1.0);
      },
      opts);
  run.metrics_json = sink.to_json();
  return run;
}

TEST(ExecSmoke, ParallelForIsThreadCountInvariant) {
  constexpr std::size_t kN = 500;
  const ParallelRun inline_run = run_stochastic_loop(nullptr, kN);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const ParallelRun run = run_stochastic_loop(&pool, kN);
    EXPECT_EQ(run.values, inline_run.values) << threads << " threads";
    EXPECT_EQ(run.metrics_json, inline_run.metrics_json)
        << threads << " threads";
  }
  // Sanity on the merged shards: every item counted exactly once, and the
  // gauge holds the last chunk's value (merge is in chunk order).
  obs::MetricsRegistry sink;
  ParallelOptions opts;
  opts.chunks = 16;
  opts.seed = 99;
  opts.metrics_sink = &sink;
  ThreadPool pool(8);
  parallel_for(
      &pool, kN,
      [](std::size_t, TaskContext& ctx) {
        ctx.metrics->counter("exec.test.items")->inc();
        ctx.metrics->gauge("exec.test.last_chunk")
            ->set(static_cast<double>(ctx.chunk));
      },
      opts);
  EXPECT_EQ(sink.find_counter("exec.test.items")->value(), kN);
  EXPECT_DOUBLE_EQ(sink.find_gauge("exec.test.last_chunk")->value(), 15.0);
}

TEST(ExecSmoke, TicketSchedulerDeterministicAcrossThreadsAndRepeats) {
  // The ticket scheduler assigns chunks to lanes by claim order, which
  // varies run to run — results must not.  Every thread count and every
  // repeat must reproduce the inline run bit-for-bit, metrics included.
  constexpr std::size_t kN = 300;
  const ParallelRun reference = run_stochastic_loop(nullptr, kN);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      ThreadPool pool(threads);
      const ParallelRun run = run_stochastic_loop(&pool, kN);
      EXPECT_EQ(run.values, reference.values)
          << threads << " threads, repeat " << repeat;
      EXPECT_EQ(run.metrics_json, reference.metrics_json)
          << threads << " threads, repeat " << repeat;
    }
  }
}

TEST(ExecSmoke, AdaptiveDefaultRunsEveryItemOnce) {
  // opts.chunks == 0 adapts the chunk count to the pool; whatever it
  // picks, every index must run exactly once and chunk indices must stay
  // within the derived chunk list.
  constexpr std::size_t kN = 1000;
  for (const std::size_t threads : {0u, 1u, 3u, 8u}) {  // 0 = inline
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    std::vector<int> seen(kN, 0);
    std::atomic<std::size_t> total{0};
    std::atomic<std::size_t> max_chunk{0};
    parallel_for(pool.get(), kN,
                 [&](std::size_t i, TaskContext& ctx) {
                   ++seen[i];  // each index is owned by exactly one chunk
                   total.fetch_add(1, std::memory_order_relaxed);
                   std::size_t prev =
                       max_chunk.load(std::memory_order_relaxed);
                   while (prev < ctx.chunk &&
                          !max_chunk.compare_exchange_weak(
                              prev, ctx.chunk, std::memory_order_relaxed)) {
                   }
                 });
    EXPECT_EQ(total.load(), kN) << threads << " threads";
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](int c) { return c == 1; }))
        << threads << " threads";
    const std::size_t workers = pool ? pool->size() : 1;
    const std::size_t expect_chunks =
        workers <= 1 ? 1 : std::min(kN, workers * kChunksPerWorker);
    EXPECT_LT(max_chunk.load(), expect_chunks) << threads << " threads";
  }
}

TEST(ExecSmoke, LowestChunkExceptionWins) {
  // Two chunks throw; whichever lane hits its failure first, the caller
  // must always see the lowest-indexed chunk's exception.
  const auto failing_run = [](ThreadPool* pool) -> std::string {
    ParallelOptions opts;
    opts.chunks = 8;
    try {
      parallel_for(
          pool, 100,
          [](std::size_t, TaskContext& ctx) {
            if (ctx.chunk == 2) throw std::runtime_error("chunk2");
            if (ctx.chunk == 5) throw std::runtime_error("chunk5");
          },
          opts);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "no exception";
  };
  EXPECT_EQ(failing_run(nullptr), "chunk2");
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 4; ++repeat) {
    EXPECT_EQ(failing_run(&pool), "chunk2") << "repeat " << repeat;
  }
}

TEST(ExecSmoke, ParallelForExceptionLeavesSinkUntouched) {
  ThreadPool pool(4);
  obs::MetricsRegistry sink;
  ParallelOptions opts;
  opts.chunks = 8;
  opts.metrics_sink = &sink;
  EXPECT_THROW(
      parallel_for(
          &pool, 100,
          [](std::size_t i, TaskContext& ctx) {
            ctx.metrics->counter("exec.test.items")->inc();
            if (i == 37) throw std::runtime_error("body failed");
          },
          opts),
      std::runtime_error);
  EXPECT_EQ(sink.find_counter("exec.test.items"), nullptr);
}

// ---------------------------------------------------------------------------
// Parallel == sequential: routecomp
// ---------------------------------------------------------------------------

TEST(ExecSmoke, GrSweepBatchMatchesSequential) {
  topology::GeneratorParams params;
  params.tier1_count = 4;
  params.transit_count = 20;
  params.stub_count = 120;
  params.seed = 7;
  const auto generated = topology::generate_internet(params);
  const auto& topo = generated.graph;

  std::vector<NodeId> origins;
  for (NodeId u = 0; u < std::min<std::size_t>(topo.node_count(), 40); ++u) {
    origins.push_back(u);
  }
  ThreadPool pool(8);
  const auto batch = routecomp::gr_sweep_batch(topo, origins, &pool);
  ASSERT_EQ(batch.size(), origins.size());
  for (std::size_t i = 0; i < origins.size(); ++i) {
    const auto solo = routecomp::gr_sweep(topo, origins[i]);
    EXPECT_EQ(batch[i].origins, solo.origins) << "origin " << origins[i];
    EXPECT_EQ(batch[i].cls, solo.cls) << "origin " << origins[i];
    EXPECT_EQ(batch[i].dist, solo.dist) << "origin " << origins[i];
  }
}

TEST(ExecSmoke, SolveBatchMatchesSequential) {
  const auto topo = F1::topology();
  const auto net = routecomp::LabeledNetwork::from_topology(topo);
  GrPathAlgebra alg;
  std::vector<routecomp::Origination> origins;
  for (NodeId u = 0; u < topo.node_count(); ++u) origins.push_back({u, kCust});

  ThreadPool pool(8);
  const auto batch = routecomp::solve_batch(alg, net, origins, nullptr, 1000,
                                            &pool);
  ASSERT_EQ(batch.size(), origins.size());
  for (std::size_t i = 0; i < origins.size(); ++i) {
    const auto solo =
        routecomp::solve(alg, net, origins[i].origin, origins[i].attr);
    EXPECT_EQ(batch[i].attr, solo.attr) << "origin " << origins[i].origin;
    EXPECT_EQ(batch[i].converged, solo.converged);
    EXPECT_EQ(batch[i].rounds, solo.rounds);
  }
}

// ---------------------------------------------------------------------------
// Parallel == sequential: chaos schedule sweep (32 schedules)
// ---------------------------------------------------------------------------

std::string outcome_digest(const chaos::ScheduleOutcome& out) {
  std::string d;
  d += std::to_string(out.seed) + "|";
  d += std::to_string(out.skipped) + std::to_string(out.quiescent) +
       std::to_string(out.invariants_ok) + std::to_string(out.oracle_ok) + "|";
  d += std::to_string(out.first_action) + "," +
       std::to_string(out.last_action) + "," + std::to_string(out.end_time) +
       "|";
  d += std::to_string(out.stats.announcements) + "," +
       std::to_string(out.stats.withdrawals) + "," +
       std::to_string(out.stats.deaggregations) + "," +
       std::to_string(out.msgs_lost) + "|";
  d += out.plan_json + "|" + out.metrics.to_json();
  return d;
}

TEST(ExecSmoke, ChaosSweepMatchesSequentialAcrossThreadCounts) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  chaos::SweepSpec spec;
  spec.topo = &topo;
  spec.alg = &alg;
  spec.config.mrai = 0.5;
  spec.config.link_delay = 0.01;
  spec.config.enable_dragon = true;
  spec.config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  spec.config.faults.loss = 0.1;
  spec.config.faults.duplicate = 0.05;
  spec.config.faults.delay_prob = 0.2;
  spec.origins = {{bp("1"), F2::origin_q, kCust},
                  {bp("10"), F2::origin_p, kCust}};
  spec.params.events = 4;
  spec.params.horizon = 20.0;
  spec.params.restore_prob = 0.6;
  spec.params.origin_flap_prob = 0.25;
  spec.invariants.max_sources = 64;

  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 32; ++i) seeds.push_back(7000 + i);

  const auto sequential = chaos::run_schedule_sweep(spec, seeds, nullptr);
  ASSERT_EQ(sequential.size(), seeds.size());
  std::size_t ran = 0;
  for (const auto& out : sequential) {
    EXPECT_TRUE(out.ok()) << "seed=" << out.seed << "\n"
                          << out.diagnostics << out.plan_json;
    if (!out.skipped) ++ran;
  }
  EXPECT_GT(ran, 0u);

  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const auto parallel = chaos::run_schedule_sweep(spec, seeds, &pool);
    ASSERT_EQ(parallel.size(), sequential.size()) << threads << " threads";
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(outcome_digest(parallel[i]), outcome_digest(sequential[i]))
          << "schedule " << i << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace dragon::exec
