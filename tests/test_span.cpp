// Execution-span profiler + Chrome-trace export tests (DESIGN.md §11):
// ring wrap and drop accounting, nested-span containment, the exact
// site accumulators, export document shape and string escaping, and the
// cross-thread-count invariance of span counts.  The ExecSmoke-named
// tests ride the `exec_smoke` ctest entry, so the tsan-exec-smoke
// preset also proves the single-writer ring + join-then-collect
// protocol race-free.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"

namespace dragon::obs {
namespace {

/// Arms recording for the test body and leaves the process-wide state
/// clean afterwards (other suites expect spans off).
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    span_enable(true);
    span_reset();
  }
  void TearDown() override {
    span_enable(false);
    span_reset();
  }
};

std::uint64_t records_of(const char* category, const char* name) {
  std::uint64_t count = 0;
  for (const ThreadSpans& thread : span_collect()) {
    for (const SpanRecord& rec : thread.records) {
      if (std::strcmp(rec.site->category, category) == 0 &&
          std::strcmp(rec.site->name, name) == 0) {
        ++count;
      }
    }
  }
  return count;
}

std::uint64_t calls_of(const char* category, const char* name) {
  for (const SpanSiteTotals& site : span_site_totals()) {
    if (std::strcmp(site.category, category) == 0 &&
        std::strcmp(site.name, name) == 0) {
      return site.calls;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Ring buffer semantics (no macros involved; compiles under notrace too)
// ---------------------------------------------------------------------------

TEST_F(SpanTest, RingWrapKeepsNewestAndCountsDrops) {
  SpanBuffer buffer(4);
  EXPECT_EQ(buffer.capacity(), 4u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    SpanRecord rec;
    rec.start_ns = i;
    buffer.push(rec);
  }
  EXPECT_EQ(buffer.pushed(), 6u);
  EXPECT_EQ(buffer.dropped(), 2u);
  EXPECT_EQ(buffer.size(), 4u);

  std::vector<SpanRecord> records;
  buffer.snapshot(records);
  ASSERT_EQ(records.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].start_ns, i + 2) << "oldest-first order";
  }

  buffer.clear();
  EXPECT_EQ(buffer.pushed(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_EQ(buffer.size(), 0u);
}

#if DRAGON_TRACE

// ---------------------------------------------------------------------------
// Recording semantics
// ---------------------------------------------------------------------------

TEST_F(SpanTest, NestedSpansRecordContainmentAndArgs) {
  {
    DRAGON_SPAN("span_test", "outer");
    {
      DRAGON_SPAN_ARG("span_test", "inner", "value", 7);
    }
  }
  const auto threads = span_collect();
  const SpanRecord* outer = nullptr;
  const SpanRecord* inner = nullptr;
  for (const ThreadSpans& thread : threads) {
    for (const SpanRecord& rec : thread.records) {
      if (std::strcmp(rec.site->category, "span_test") != 0) continue;
      if (std::strcmp(rec.site->name, "outer") == 0) outer = &rec;
      if (std::strcmp(rec.site->name, "inner") == 0) inner = &rec;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // RAII closes inner first, so it is pushed before outer and nests
  // inside it on the timeline.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  EXPECT_EQ(inner->args[0], 7u);
  ASSERT_NE(inner->site->arg_keys[0], nullptr);
  EXPECT_STREQ(inner->site->arg_keys[0], "value");
}

TEST_F(SpanTest, DeferredArgsLandInTheRecord) {
  {
    DRAGON_SPAN_NAMED(span, "span_test", "deferred", "count");
    span.set_arg(0, 41);
    span.set_arg(0, 42);  // last write wins
  }
  const auto threads = span_collect();
  for (const ThreadSpans& thread : threads) {
    for (const SpanRecord& rec : thread.records) {
      if (std::strcmp(rec.site->name, "deferred") == 0) {
        EXPECT_EQ(rec.args[0], 42u);
        return;
      }
    }
  }
  FAIL() << "deferred span not recorded";
}

TEST_F(SpanTest, DisabledScopesRecordNothing) {
  span_enable(false);
  const std::uint64_t before = span_local_buffer().pushed();
  {
    DRAGON_SPAN("span_test", "disabled");
  }
  EXPECT_EQ(span_local_buffer().pushed(), before);
  EXPECT_EQ(calls_of("span_test", "disabled"), 0u);
}

TEST_F(SpanTest, SiteTotalsStayExactAfterRingWrap) {
  const std::uint64_t spins = span_local_buffer().capacity() + 100;
  for (std::uint64_t i = 0; i < spins; ++i) {
    DRAGON_SPAN("span_test", "wrap");
  }
  // The ring wrapped (and says so), but the accumulators kept counting.
  EXPECT_EQ(calls_of("span_test", "wrap"), spins);
  bool saw_drop = false;
  for (const ThreadSpans& thread : span_collect()) {
    if (thread.dropped > 0) saw_drop = true;
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_LT(records_of("span_test", "wrap"), spins);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST_F(SpanTest, ExportEmitsMetadataEventsAndArgs) {
  span_set_thread_name("span-test-main");
  {
    DRAGON_SPAN_ARG("span_test", "export", "items", 9);
  }
  TraceExportOptions options;
  options.process_name = "span_test_proc";
  options.other_data = {{"seed", "17"}};
  const std::string json = chrome_trace_json(options);

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"span_test_proc\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"span-test-main\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"span_test\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"export\""), std::string::npos);
  EXPECT_NE(json.find("\"items\":9"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped.total\":\"0\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":\"17\""), std::string::npos);
}

TEST_F(SpanTest, ExportEscapesStrings) {
  TraceExportOptions options;
  options.process_name = "quote\"back\\slash\nnewline";
  const std::string json = chrome_trace_json(options);
  EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnewline"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cross-thread-count invariance + TSan coverage (ExecSmoke entry)
// ---------------------------------------------------------------------------

TEST(ExecSmoke, SpanCountsInvariantAcrossThreadCounts) {
  span_enable(true);
  constexpr std::size_t kItems = 64;
  const auto run = [](exec::ThreadPool* pool) {
    span_reset();
    exec::parallel_for(
        pool, kItems,
        [](std::size_t i, exec::TaskContext&) {
          DRAGON_SPAN_ARG("span_test", "work", "item", i);
        },
        {});
  };

  // Workers are joined (pool destroyed) before every collect, which is
  // exactly the reader contract the export layer documents — under the
  // tsan preset this test proves the protocol race-free.
  run(nullptr);
  const std::uint64_t sequential = records_of("span_test", "work");
  EXPECT_EQ(sequential, kItems);
  EXPECT_EQ(calls_of("span_test", "work"), kItems);

  for (const std::size_t threads : {2u, 4u}) {
    auto pool = std::make_unique<exec::ThreadPool>(threads);
    run(pool.get());
    pool.reset();
    EXPECT_EQ(records_of("span_test", "work"), sequential)
        << "at " << threads << " threads";
    EXPECT_EQ(calls_of("span_test", "work"), kItems);
  }
  span_enable(false);
  span_reset();
}

#endif  // DRAGON_TRACE

}  // namespace
}  // namespace dragon::obs
