#include <gtest/gtest.h>

#include <sstream>

#include "paper_networks.hpp"
#include "topology/cleaner.hpp"
#include "topology/generator.hpp"
#include "topology/graph.hpp"
#include "topology/loader.hpp"

namespace dragon::topology {
namespace {

TEST(Topology, BasicAdjacency) {
  Topology topo(3);
  topo.add_provider_customer(0, 1);
  topo.add_peer_peer(1, 2);
  EXPECT_EQ(topo.node_count(), 3u);
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_TRUE(topo.linked(0, 1));
  EXPECT_TRUE(topo.linked(1, 0));
  EXPECT_FALSE(topo.linked(0, 2));

  EXPECT_EQ(topo.customers(0), std::vector<NodeId>{1});
  EXPECT_EQ(topo.providers(1), std::vector<NodeId>{0});
  EXPECT_EQ(topo.peers(1), std::vector<NodeId>{2});
  EXPECT_TRUE(topo.is_root(0));
  EXPECT_FALSE(topo.is_stub(0));
  EXPECT_TRUE(topo.is_stub(1));
}

TEST(Topology, RemoveLink) {
  Topology topo(2);
  topo.add_provider_customer(0, 1);
  EXPECT_TRUE(topo.remove_link(1, 0));
  EXPECT_FALSE(topo.remove_link(1, 0));
  EXPECT_EQ(topo.link_count(), 0u);
  EXPECT_FALSE(topo.linked(0, 1));
}

TEST(Topology, LinksReportedOnce) {
  const auto topo = testing::Figure1::topology();
  const auto links = topo.links();
  EXPECT_EQ(links.size(), topo.link_count());
  EXPECT_EQ(links.size(), 7u);
}

TEST(Topology, CustomerConeSize) {
  const auto topo = testing::Figure1::topology();
  using F = testing::Figure1;
  // u2's cone: itself, customers u3 and u4, and their customers u5, u6.
  EXPECT_EQ(topo.customer_cone_size(F::u2), 5u);
  EXPECT_EQ(topo.customer_cone_size(F::u6), 1u);
  EXPECT_EQ(topo.customer_cone_size(F::u4), 2u);  // u4 and u6
}

TEST(Loader, ParsesCaidaFormat) {
  std::istringstream in(
      "# inferred relationships\n"
      "100|200|-1\n"
      "200|300|-1\n"
      "100|400|0\n"
      "400|300|-1|mlp\n");  // extra source field tolerated
  const auto loaded = load_as_relationships(in);
  EXPECT_EQ(loaded.graph.node_count(), 4u);
  EXPECT_EQ(loaded.graph.link_count(), 4u);
  EXPECT_EQ(loaded.asn[0], 100u);
  // 100 is provider of 200.
  EXPECT_EQ(loaded.graph.customers(0), std::vector<NodeId>{1});
  EXPECT_EQ(loaded.graph.peers(0), std::vector<NodeId>{3});
}

TEST(Loader, SkipsDuplicatesAndSelfLoops) {
  std::istringstream in(
      "1|2|-1\n"
      "1|2|0\n"
      "3|3|-1\n");
  const auto loaded = load_as_relationships(in);
  EXPECT_EQ(loaded.graph.link_count(), 1u);
  EXPECT_EQ(loaded.skipped_lines, 2u);
}

TEST(Loader, RejectsMalformedLines) {
  std::istringstream bad1("1|2\n");
  EXPECT_THROW((void)load_as_relationships(bad1), std::runtime_error);
  std::istringstream bad2("1|2|9\n");
  EXPECT_THROW((void)load_as_relationships(bad2), std::runtime_error);
  std::istringstream bad3("x|2|-1\n");
  EXPECT_THROW((void)load_as_relationships(bad3), std::runtime_error);
}

TEST(Loader, SaveLoadRoundTrip) {
  const auto topo = testing::Figure4::topology();
  std::ostringstream out;
  save_as_relationships(topo, out);
  std::istringstream in(out.str());
  const auto loaded = load_as_relationships(in);
  EXPECT_EQ(loaded.graph.node_count(), topo.node_count());
  EXPECT_EQ(loaded.graph.link_count(), topo.link_count());
}

TEST(Cleaner, BreaksCustomerProviderCycle) {
  Topology topo(3);
  // 0 provider of 1, 1 provider of 2, 2 provider of 0: a customer-provider
  // cycle (each node is a customer of the next around the cycle).
  topo.add_provider_customer(0, 1);
  topo.add_provider_customer(1, 2);
  topo.add_provider_customer(2, 0);
  const auto removed = break_customer_provider_cycles(topo);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(topo.link_count(), 2u);
  // Re-running is a no-op.
  Topology again = topo;
  EXPECT_EQ(break_customer_provider_cycles(again), 0u);
}

TEST(Cleaner, PolicyConnectivityCheck) {
  // Two disjoint hierarchies: not policy-connected.
  Topology topo(4);
  topo.add_provider_customer(0, 1);
  topo.add_provider_customer(2, 3);
  EXPECT_FALSE(is_policy_connected(topo));
  // Peering the roots connects them.
  topo.add_peer_peer(0, 2);
  EXPECT_TRUE(is_policy_connected(topo));
}

TEST(Cleaner, CleanKeepsLargestAnchoredComponent) {
  Topology topo(6);
  // Roots 0 and 1 peer (the clique); root 5 is isolated on top of node 4.
  topo.add_peer_peer(0, 1);
  topo.add_provider_customer(0, 2);
  topo.add_provider_customer(1, 3);
  topo.add_provider_customer(5, 4);
  const auto [cleaned, report] = clean(topo);
  EXPECT_EQ(report.original_nodes, 6u);
  EXPECT_EQ(cleaned.node_count(), 4u);
  EXPECT_EQ(report.nodes_removed, 2u);
  EXPECT_TRUE(is_policy_connected(cleaned));
}

TEST(Cleaner, FigureNetworksAlreadyClean) {
  for (const Topology& topo :
       {testing::Figure1::topology(), testing::Figure4::topology()}) {
    const auto [cleaned, report] = clean(topo);
    EXPECT_EQ(report.nodes_removed, 0u);
    EXPECT_EQ(report.cycle_links_removed, 0u);
    EXPECT_EQ(cleaned.link_count(), topo.link_count());
  }
}

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, StructuralInvariants) {
  GeneratorParams params;
  params.tier1_count = 6;
  params.transit_count = 60;
  params.stub_count = 300;
  params.seed = GetParam();
  const auto gen = generate_internet(params);
  const auto& topo = gen.graph;
  EXPECT_EQ(topo.node_count(), 366u);

  // Acyclic customer->provider digraph: the cleaner finds nothing.
  Topology copy = topo;
  EXPECT_EQ(break_customer_provider_cycles(copy), 0u);

  // Policy-connected by construction (tier-1 clique on top).
  EXPECT_TRUE(is_policy_connected(topo));

  // Roots are exactly the tier-1 nodes.
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_EQ(topo.is_root(u), gen.role[u] == Role::kTier1);
    if (gen.role[u] == Role::kStub) EXPECT_TRUE(topo.is_stub(u));
  }

  // Determinism: same seed, same graph.
  const auto again = generate_internet(params);
  EXPECT_EQ(again.graph.link_count(), topo.link_count());
  EXPECT_EQ(again.region, gen.region);
}

TEST_P(GeneratorProperty, IxpPeeringAddsOnlySameRegionPeerLinks) {
  GeneratorParams params;
  params.tier1_count = 5;
  params.transit_count = 50;
  params.stub_count = 200;
  params.seed = GetParam();
  auto gen = generate_internet(params);
  const auto before = gen.graph.link_count();
  util::Rng rng(99);
  const auto added = add_ixp_peering(gen, 100, rng);
  EXPECT_EQ(gen.graph.link_count(), before + added);
  EXPECT_GT(added, 0u);
  EXPECT_TRUE(is_policy_connected(gen.graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dragon::topology
