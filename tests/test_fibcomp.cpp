#include <gtest/gtest.h>

#include <algorithm>

#include "fibcomp/fib.hpp"
#include "fibcomp/ortc.hpp"
#include "util/rng.hpp"

namespace dragon::fibcomp {
namespace {

using prefix::Prefix;

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

TEST(Fib, LookupIsLongestPrefixMatch) {
  const Fib fib{{bp("1"), 1}, {bp("10"), 2}, {bp("101"), 3}};
  const auto trie = build_trie(fib);
  EXPECT_EQ(lookup(trie, 0b10100000u << 24), 3u);
  EXPECT_EQ(lookup(trie, 0b10000000u << 24), 2u);
  EXPECT_EQ(lookup(trie, 0b11000000u << 24), 1u);
  EXPECT_EQ(lookup(trie, 0b01000000u << 24), kDrop);
}

TEST(Fib, NextHopFromNodeRejectsSentinelCollisions) {
  EXPECT_EQ(next_hop_from_node(0), 0u);
  EXPECT_EQ(next_hop_from_node(kSentinelBase - 1), kSentinelBase - 1);
  EXPECT_THROW((void)next_hop_from_node(kSentinelBase), std::invalid_argument);
  EXPECT_THROW((void)next_hop_from_node(kDrop), std::invalid_argument);
  EXPECT_THROW((void)next_hop_from_node(kLocal), std::invalid_argument);
  EXPECT_THROW((void)next_hop_from_node(0x1'00000000ull),
               std::invalid_argument);
}

TEST(Fib, BuildTrieRejectsUndefinedSentinels) {
  // kDrop/kLocal are legitimate FIB entries; anything else in the
  // reserved range is a node id that silently collided — reject loudly.
  const Fib ok{{bp("1"), kDrop}, {bp("10"), kLocal}, {bp("11"), 7}};
  EXPECT_NO_THROW((void)build_trie(ok));
  const Fib bad{{bp("1"), kSentinelBase}};
  EXPECT_THROW((void)build_trie(bad), std::invalid_argument);
  EXPECT_THROW(check_fib_next_hops(bad), std::invalid_argument);
  const Fib bad2{{bp("1"), kLocal - 1}};
  EXPECT_THROW((void)build_trie(bad2), std::invalid_argument);
}

TEST(Fib, ForwardingEquivalence) {
  const Fib a{{bp("1"), 1}, {bp("10"), 1}};
  const Fib b{{bp("1"), 1}};
  EXPECT_TRUE(forwarding_equivalent(a, b));  // the 10 entry is redundant
  const Fib c{{bp("1"), 2}};
  EXPECT_FALSE(forwarding_equivalent(a, c));
  const Fib d{};
  EXPECT_FALSE(forwarding_equivalent(a, d));
  EXPECT_TRUE(forwarding_equivalent(d, Fib{}));
}

TEST(Conservative, RemovesRedundantChild) {
  const Fib input{{bp("1"), 1}, {bp("10"), 1}, {bp("11"), 2}};
  const auto out = compress_conservative(input);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(forwarding_equivalent(input, out));
  // Output is a subset of the input.
  for (const auto& e : out) {
    EXPECT_NE(std::find(input.begin(), input.end(), e), input.end());
  }
}

TEST(Conservative, RemovesShadowedParent) {
  // The parent is fully covered by children with their own next hops.
  const Fib input{{bp("1"), 9}, {bp("10"), 1}, {bp("11"), 2}};
  const auto out = compress_conservative(input);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(forwarding_equivalent(input, out));
}

TEST(Conservative, KeepsNecessaryEntries) {
  const Fib input{{bp("1"), 1}, {bp("10"), 2}};
  const auto out = compress_conservative(input);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Ortc, MergesSiblingsWithNewAggregate) {
  // Classic ORTC win: both children share a hop reachable by announcing
  // the (synthesised) parent once... here the parent entry replaces both.
  const Fib input{{bp("10"), 5}, {bp("11"), 5}};
  const auto out = compress_ortc(input);
  EXPECT_TRUE(forwarding_equivalent(input, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].prefix, bp("1"));
  EXPECT_EQ(out[0].next_hop, 5u);
}

TEST(Ortc, ClassicDravesExample) {
  // Root default to hop 1, 00->2, 10->2: optimal is {*->2, 01->1, 11->1}
  // or an equivalent 3-entry table.
  const Fib input{{Prefix{}, 1}, {bp("00"), 2}, {bp("10"), 2}};
  const auto out = compress_ortc(input);
  EXPECT_TRUE(forwarding_equivalent(input, out));
  EXPECT_LE(out.size(), 3u);
}

TEST(Ortc, PreservesDropRegions) {
  // No root entry: addresses under 0 are dropped and must stay dropped.
  const Fib input{{bp("1"), 1}, {bp("11"), 1}};
  const auto out = compress_ortc(input);
  EXPECT_TRUE(forwarding_equivalent(input, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].prefix, bp("1"));
}

TEST(Ortc, NeverWorseThanConservative) {
  util::Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    Fib fib;
    for (int i = 0; i < 60; ++i) {
      fib.push_back({Prefix(static_cast<prefix::Address>(rng()),
                            1 + static_cast<int>(rng.below(10))),
                     static_cast<NextHop>(rng.below(4))});
    }
    // Deduplicate prefixes (keep first).
    Fib dedup;
    for (const auto& e : fib) {
      const bool seen =
          std::any_of(dedup.begin(), dedup.end(), [&](const FibEntry& d) {
            return d.prefix == e.prefix;
          });
      if (!seen) dedup.push_back(e);
    }
    const auto cons = compress_conservative(dedup);
    const auto ortc = compress_ortc(dedup);
    EXPECT_LE(ortc.size(), cons.size());
    EXPECT_LE(cons.size(), dedup.size());
  }
}

class FibCompressionProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FibCompressionProperty, BothPreserveForwardingExactly) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Fib fib;
    const int entries = 20 + static_cast<int>(rng.below(80));
    for (int i = 0; i < entries; ++i) {
      const Prefix p(static_cast<prefix::Address>(rng()),
                     static_cast<int>(rng.below(14)));
      const bool seen =
          std::any_of(fib.begin(), fib.end(),
                      [&](const FibEntry& d) { return d.prefix == p; });
      if (!seen) fib.push_back({p, static_cast<NextHop>(rng.below(5))});
    }
    const auto cons = compress_conservative(fib);
    EXPECT_TRUE(forwarding_equivalent(fib, cons));
    const auto ortc = compress_ortc(fib);
    EXPECT_TRUE(forwarding_equivalent(fib, ortc));
    // Compression is idempotent.
    EXPECT_EQ(compress_conservative(cons).size(), cons.size());
    EXPECT_EQ(compress_ortc(ortc).size(), ortc.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FibCompressionProperty,
                         ::testing::Values(51, 52, 53, 54, 55));

}  // namespace
}  // namespace dragon::fibcomp
