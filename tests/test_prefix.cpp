#include "prefix/prefix.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace dragon::prefix {
namespace {

TEST(Prefix, RootCoversEverything) {
  const Prefix root;
  EXPECT_EQ(root.length(), 0);
  EXPECT_EQ(root.size(), std::uint64_t{1} << 32);
  EXPECT_TRUE(root.contains(0u));
  EXPECT_TRUE(root.contains(0xFFFFFFFFu));
}

TEST(Prefix, BitStringRoundTrip) {
  for (const char* s : {"", "0", "1", "10", "10000", "101011", "11111111"}) {
    const auto p = Prefix::from_bit_string(s);
    ASSERT_TRUE(p.has_value()) << s;
    EXPECT_EQ(p->to_bit_string(), s);
  }
}

TEST(Prefix, BitStringRejectsBadInput) {
  EXPECT_FALSE(Prefix::from_bit_string("102").has_value());
  EXPECT_FALSE(Prefix::from_bit_string("abc").has_value());
  EXPECT_FALSE(
      Prefix::from_bit_string(std::string(33, '1')).has_value());
}

TEST(Prefix, CidrRoundTrip) {
  for (const char* s :
       {"0.0.0.0/0", "10.0.0.0/8", "10.32.0.0/12", "192.168.1.0/24",
        "255.255.255.255/32"}) {
    const auto p = Prefix::from_cidr(s);
    ASSERT_TRUE(p.has_value()) << s;
    EXPECT_EQ(p->to_cidr(), s);
  }
}

TEST(Prefix, CidrRejectsBadInput) {
  EXPECT_FALSE(Prefix::from_cidr("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::from_cidr("10.0.0/8").has_value());
  EXPECT_FALSE(Prefix::from_cidr("256.0.0.0/8").has_value());
  EXPECT_FALSE(Prefix::from_cidr("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::from_cidr("10.0.0.0/x").has_value());
}

TEST(Prefix, CanonicalisesLowBits) {
  // Bits below the prefix length are cleared on construction.
  const Prefix p(0xFFFFFFFFu, 8);
  EXPECT_EQ(p.bits(), 0xFF000000u);
  EXPECT_EQ(p, Prefix(0xFF000000u, 8));
}

TEST(Prefix, CoversAndSpecificity) {
  const auto p = *Prefix::from_bit_string("10");
  const auto q = *Prefix::from_bit_string("10000");
  EXPECT_TRUE(p.covers(q));
  EXPECT_FALSE(q.covers(p));
  EXPECT_TRUE(p.covers(p));
  EXPECT_TRUE(q.more_specific_than(p));
  EXPECT_FALSE(p.more_specific_than(q));
  EXPECT_FALSE(p.more_specific_than(p));

  const auto r = *Prefix::from_bit_string("11");
  EXPECT_FALSE(p.covers(r));
  EXPECT_FALSE(r.covers(p));
}

TEST(Prefix, FamilyNavigation) {
  const auto p = *Prefix::from_bit_string("101");
  EXPECT_EQ(p.trie_parent().to_bit_string(), "10");
  EXPECT_EQ(p.child(0).to_bit_string(), "1010");
  EXPECT_EQ(p.child(1).to_bit_string(), "1011");
  EXPECT_EQ(p.sibling().to_bit_string(), "100");
  EXPECT_EQ(p.sibling().sibling(), p);
  EXPECT_EQ(p.bit_at(0), 1);
  EXPECT_EQ(p.bit_at(1), 0);
  EXPECT_EQ(p.bit_at(2), 1);
}

TEST(Prefix, OrderingIsTriePreOrder) {
  // Sorting by (bits, length) puts a covering prefix right before its
  // covered descendants.
  const auto p = *Prefix::from_bit_string("10");
  const auto q0 = *Prefix::from_bit_string("100");
  const auto q1 = *Prefix::from_bit_string("101");
  const auto r = *Prefix::from_bit_string("11");
  EXPECT_LT(p, q0);
  EXPECT_LT(q0, q1);
  EXPECT_LT(q1, r);
}

TEST(Prefix, ComplementWithinPaperExample) {
  // §3.8: p = 10, q = 10000 -> {10001, 1001, 101}.
  const auto p = *Prefix::from_bit_string("10");
  const auto q = *Prefix::from_bit_string("10000");
  const auto pieces = complement_within(p, q);
  ASSERT_EQ(pieces.size(), 3u);
  std::set<std::string> got;
  for (const auto& piece : pieces) got.insert(piece.to_bit_string());
  EXPECT_EQ(got, (std::set<std::string>{"10001", "1001", "101"}));
}

class ComplementProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComplementProperty, PartitionsParentMinusChild) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const int plen = static_cast<int>(rng.below(20));
    const int qlen = plen + 1 + static_cast<int>(rng.below(10));
    const Prefix p(static_cast<Address>(rng()), plen);
    // Random q strictly inside p.
    Address qbits = p.bits() | (static_cast<Address>(rng()) >>
                                (plen == 0 ? 0 : plen));
    const Prefix q(qbits, qlen);
    ASSERT_TRUE(q.more_specific_than(p));

    const auto pieces = complement_within(p, q);
    EXPECT_EQ(pieces.size(), static_cast<std::size_t>(qlen - plen));
    // Pieces + q tile p exactly: disjoint, inside p, sizes sum to p's size.
    std::uint64_t total = q.size();
    for (const auto& piece : pieces) {
      EXPECT_TRUE(p.covers(piece));
      EXPECT_FALSE(piece.covers(q));
      EXPECT_FALSE(q.covers(piece));
      total += piece.size();
    }
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      for (std::size_t j = i + 1; j < pieces.size(); ++j) {
        EXPECT_FALSE(pieces[i].covers(pieces[j]));
        EXPECT_FALSE(pieces[j].covers(pieces[i]));
      }
    }
    EXPECT_EQ(total, p.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplementProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Prefix, HashDistinguishesLengths) {
  const std::hash<Prefix> h;
  EXPECT_NE(h(*Prefix::from_bit_string("10")),
            h(*Prefix::from_bit_string("100")));
}

TEST(Prefix, ParsePrefixAutodetects) {
  EXPECT_EQ(parse_prefix("10.0.0.0/8"), Prefix::from_cidr("10.0.0.0/8"));
  EXPECT_EQ(parse_prefix("1010"), Prefix::from_bit_string("1010"));
}

}  // namespace
}  // namespace dragon::prefix
