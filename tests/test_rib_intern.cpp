// Property tests for the hot-path RIB memory layout (DESIGN.md §10): the
// prefix interner's dense ids and memoized covering links, the flat
// PrefixId-keyed containers in engine/rib.hpp checked against std
// reference containers, and the engine-level guarantees the layout must
// not disturb — snapshot/restore bit-identical replay (including interner
// growth past the captured state), crash/restart on the flat RIB, and
// sequential-vs-4-thread digest equality.
//
// The `RibIntern` suite is the tier-1 `rib_smoke` ctest entry.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "algebra/gr_path_algebra.hpp"
#include "chaos/sweep.hpp"
#include "engine/rib.hpp"
#include "engine/simulator.hpp"
#include "exec/thread_pool.hpp"
#include "paper_networks.hpp"
#include "prefix/intern.hpp"
#include "prefix/prefix_trie.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace dragon::engine {
namespace {

using algebra::GrClass;
using algebra::GrPathAlgebra;
using prefix::kNoPrefixId;
using prefix::Prefix;
using prefix::PrefixId;
using prefix::PrefixInterner;
using prefix::PrefixSet;
using topology::NodeId;
using dragon::testing::quiesce;
using F1 = dragon::testing::Figure1;
using F2 = dragon::testing::Figure2;

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

constexpr algebra::Attr kCust = GrPathAlgebra::make(GrClass::kCustomer, 0);

std::vector<Prefix> random_prefixes(std::size_t count, std::uint64_t seed,
                                    int max_extra_len = 16) {
  util::Rng rng(seed);
  std::vector<Prefix> out;
  PrefixSet seen;
  while (out.size() < count) {
    const Prefix p(
        static_cast<prefix::Address>(rng()),
        4 + static_cast<int>(rng.below(
                static_cast<std::uint64_t>(max_extra_len) + 1)));
    if (seen.contains(p)) continue;
    seen.insert(p);
    out.push_back(p);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Intern table
// ---------------------------------------------------------------------------

TEST(RibIntern, RoundTripAndStableIds) {
  const auto prefixes = random_prefixes(600, 1);
  PrefixInterner interner;
  std::vector<PrefixId> ids;
  for (const auto& p : prefixes) ids.push_back(interner.intern(p));
  ASSERT_EQ(interner.size(), prefixes.size());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    // id -> prefix -> id round trip, and re-interning never mints new ids.
    EXPECT_EQ(interner.prefix_of(ids[i]), prefixes[i]);
    EXPECT_EQ(interner.find(prefixes[i]), ids[i]);
    EXPECT_EQ(interner.intern(prefixes[i]), ids[i]);
  }
  EXPECT_EQ(interner.size(), prefixes.size());
  EXPECT_EQ(interner.find(bp("010101010101010101010101")), kNoPrefixId);
}

TEST(RibIntern, MemoizedParentsMatchTrieOnRandomSets) {
  // The memoized parent link must agree with the PrefixSet (trie) parent
  // computation regardless of insertion order: later insertions splice
  // themselves between existing ancestor/descendant pairs.
  for (std::uint64_t seed = 2; seed < 8; ++seed) {
    auto prefixes = random_prefixes(400, seed, 12);
    // Densify ancestry: add a truncation of every fourth prefix so the
    // covering chains are several links deep, then shuffle.
    const std::size_t n = prefixes.size();
    PrefixSet have;
    for (const auto& p : prefixes) have.insert(p);
    for (std::size_t i = 0; i < n; i += 4) {
      if (prefixes[i].length() <= 6) continue;
      const Prefix anc(prefixes[i].bits(), prefixes[i].length() - 3);
      if (have.contains(anc)) continue;
      have.insert(anc);
      prefixes.push_back(anc);
    }
    util::Rng rng(seed * 31);
    for (std::size_t i = prefixes.size(); i > 1; --i) {
      std::swap(prefixes[i - 1], prefixes[rng.below(i)]);
    }

    PrefixInterner interner;
    PrefixSet set;
    for (const auto& p : prefixes) {
      interner.intern(p);
      set.insert(p);
    }
    for (const auto& p : prefixes) {
      const PrefixId id = interner.find(p);
      ASSERT_NE(id, kNoPrefixId);
      const PrefixId parent = interner.parent_of(id);
      const std::optional<Prefix> expect = set.parent_of(p);
      if (expect.has_value()) {
        ASSERT_NE(parent, kNoPrefixId) << "missing parent for " << p.to_bit_string();
        EXPECT_EQ(interner.prefix_of(parent), *expect) << p.to_bit_string();
      } else {
        EXPECT_EQ(parent, kNoPrefixId) << p.to_bit_string();
      }
    }
  }
}

TEST(RibIntern, CoveringChainFilteredByMembershipMatchesIteratedTrieParent) {
  // The engine's §3.6 "parent in locally-known set" query is the covering
  // chain filtered by per-node membership; the reference computation
  // iterates the trie's parent_of over the same membership subset.
  const auto prefixes = random_prefixes(300, 9, 12);
  PrefixInterner interner;
  PrefixSet all;
  for (const auto& p : prefixes) {
    interner.intern(p);
    all.insert(p);
  }
  util::Rng rng(10);
  PrefixSet member;
  std::vector<Prefix> members;
  for (const auto& p : prefixes) {
    if (rng.below(2) == 0) {
      member.insert(p);
      members.push_back(p);
    }
  }
  for (const auto& p : prefixes) {
    // Interner side: walk the covering chain, keep the first member hit.
    PrefixId got = kNoPrefixId;
    for (PrefixId pp = interner.parent_of(interner.find(p));
         pp != kNoPrefixId; pp = interner.parent_of(pp)) {
      if (member.contains(interner.prefix_of(pp))) {
        got = pp;
        break;
      }
    }
    // Trie side: iterate parent_of over the full set, skipping non-members.
    std::optional<Prefix> expect;
    for (std::optional<Prefix> q = all.parent_of(p); q.has_value();
         q = all.parent_of(*q)) {
      if (member.contains(*q)) {
        expect = *q;
        break;
      }
    }
    if (expect.has_value()) {
      ASSERT_NE(got, kNoPrefixId) << p.to_bit_string();
      EXPECT_EQ(interner.prefix_of(got), *expect) << p.to_bit_string();
    } else {
      EXPECT_EQ(got, kNoPrefixId) << p.to_bit_string();
    }
  }
}

TEST(RibIntern, SubtreeVisitMatchesTrieOrder) {
  const auto prefixes = random_prefixes(400, 11, 10);
  PrefixInterner interner;
  PrefixSet set;
  for (const auto& p : prefixes) {
    interner.intern(p);
    set.insert(p);
  }
  for (std::size_t i = 0; i < prefixes.size(); i += 7) {
    const Prefix& root = prefixes[i];
    std::vector<Prefix> via_interner;
    interner.visit_subtree(interner.find(root), [&](PrefixId q) {
      via_interner.push_back(interner.prefix_of(q));
    });
    std::vector<Prefix> via_trie;
    set.visit_subtree(root,
                      [&](const Prefix& q) { via_trie.push_back(q); });
    // Same members, same (global prefix) order.
    EXPECT_EQ(via_interner, via_trie) << root.to_bit_string();
  }
}

TEST(RibIntern, IdLessSortReproducesPrefixOrder) {
  const auto prefixes = random_prefixes(500, 12);
  PrefixInterner interner;
  std::vector<PrefixId> ids;
  for (const auto& p : prefixes) ids.push_back(interner.intern(p));
  std::sort(ids.begin(), ids.end(),
            [&](PrefixId a, PrefixId b) { return interner.id_less(a, b); });
  auto sorted = prefixes;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(interner.prefix_of(ids[i]), sorted[i]);
  }
}

// ---------------------------------------------------------------------------
// Flat containers vs std reference containers
// ---------------------------------------------------------------------------

TEST(RibIntern, PrefixIdMapMatchesStdMapUnderRandomOps) {
  util::Rng rng(13);
  PrefixIdMap<std::uint64_t> map;
  std::unordered_map<PrefixId, std::uint64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    const auto key = static_cast<PrefixId>(rng.below(512));
    switch (rng.below(4)) {
      case 0: {
        const std::uint64_t v = rng();
        map.put(key, v);
        ref[key] = v;
        break;
      }
      case 1: {
        const std::uint64_t v = rng();
        std::uint64_t& slot = map.get_or_insert(key, v);
        auto [it, fresh] = ref.try_emplace(key, v);
        ASSERT_EQ(slot, it->second);
        slot += 1;
        it->second += 1;
        break;
      }
      case 2:
        ASSERT_EQ(map.erase(key), ref.erase(key) > 0);
        break;
      default: {
        const std::uint64_t* got = map.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got != nullptr, it != ref.end());
        if (got != nullptr) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  // Full-content sweep at the end (probe order vs hash order: compare as
  // sorted pair lists).
  std::vector<std::pair<PrefixId, std::uint64_t>> got, want(ref.begin(),
                                                            ref.end());
  map.for_each([&](PrefixId k, const std::uint64_t& v) {
    got.emplace_back(k, v);
  });
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(RibIntern, PrefixIdSetSortedIdsMatchStdSet) {
  const auto prefixes = random_prefixes(300, 14);
  PrefixInterner interner;
  std::vector<PrefixId> ids;
  for (const auto& p : prefixes) ids.push_back(interner.intern(p));
  util::Rng rng(15);
  PrefixIdSet set;
  std::set<Prefix> ref;  // the seed's pending/stale container
  for (int step = 0; step < 5000; ++step) {
    const PrefixId id = ids[rng.below(ids.size())];
    if (rng.below(3) == 0) {
      ASSERT_EQ(set.erase(id), ref.erase(interner.prefix_of(id)) > 0);
    } else {
      ASSERT_EQ(set.insert(id),
                ref.insert(interner.prefix_of(id)).second);
    }
    ASSERT_EQ(set.size(), ref.size());
  }
  // sorted_ids must reproduce the seed's std::set<Prefix> iteration order.
  const std::vector<PrefixId> sorted = set.sorted_ids(interner);
  ASSERT_EQ(sorted.size(), ref.size());
  auto it = ref.begin();
  for (const PrefixId id : sorted) {
    EXPECT_EQ(interner.prefix_of(id), *it++);
  }
}

TEST(RibIntern, RibInMatchesStdMapAndIteratesSorted) {
  util::Rng rng(16);
  RibIn rib;
  std::map<NodeId, algebra::Attr> ref;  // the seed's Adj-RIB-In container
  for (int step = 0; step < 4000; ++step) {
    const auto n = static_cast<NodeId>(rng.below(24));
    if (rng.below(3) == 0) {
      ASSERT_EQ(rib.erase(n), ref.erase(n) > 0);
    } else {
      const auto attr = static_cast<algebra::Attr>(rng());
      rib.set(n, attr);
      ref[n] = attr;
    }
    ASSERT_EQ(rib.size(), ref.size());
    const algebra::Attr* got = rib.find(n);
    const auto it = ref.find(n);
    ASSERT_EQ(got != nullptr, it != ref.end());
    if (got != nullptr) {
      ASSERT_EQ(*got, it->second);
    }
  }
  auto it = ref.begin();
  for (const auto& [node, attr] : rib) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(node, it->first);
    EXPECT_EQ(attr, it->second);
    ++it;
  }
  EXPECT_EQ(it, ref.end());
}

TEST(RibIntern, FlatTableSortedIterationAndFreshFlag) {
  const auto prefixes = random_prefixes(400, 17);
  PrefixInterner interner;
  std::vector<PrefixId> ids;
  for (const auto& p : prefixes) ids.push_back(interner.intern(p));
  FlatTable<std::uint32_t> table;
  bool fresh = false;
  for (const PrefixId id : ids) {
    table.get_or_create(id, &fresh) = id;
    ASSERT_TRUE(fresh);
    table.get_or_create(id, &fresh);
    ASSERT_FALSE(fresh);
  }
  ASSERT_EQ(table.size(), ids.size());
  EXPECT_EQ(table.find(interner.intern(bp("0101010101010101010101"))),
            nullptr);
  auto sorted = prefixes;
  std::sort(sorted.begin(), sorted.end());
  std::size_t i = 0;
  table.for_each_sorted(interner, [&](PrefixId id, const std::uint32_t& v) {
    ASSERT_LT(i, sorted.size());
    EXPECT_EQ(interner.prefix_of(id), sorted[i]);
    EXPECT_EQ(v, id);
    ++i;
  });
  EXPECT_EQ(i, sorted.size());
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(ids[0]), nullptr);
}

// ---------------------------------------------------------------------------
// Engine-level guarantees on the flat RIB
// ---------------------------------------------------------------------------

Config dragon_config() {
  Config config;
  config.mrai = 0.5;
  config.link_delay = 0.01;
  config.enable_dragon = true;
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  return config;
}

std::vector<std::uint64_t> fault_digest(Simulator& sim,
                                        const topology::Topology& topo) {
  std::vector<std::uint64_t> digest{sim.stats().announcements,
                                    sim.stats().withdrawals};
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    digest.push_back(sim.elected(u, bp("10")));
    digest.push_back(sim.elected(u, bp("10000")));
    digest.push_back(sim.fib_size(u));
  }
  return digest;
}

TEST(RibIntern, SnapshotRestoreReplaysFaultsBitIdentically) {
  // Snapshot at quiescence, then run the same fail/restore arc three
  // times from one snapshot: the flat tables (and the interner being
  // *excluded* from the snapshot) must replay bit-identically.
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  sim.originate(bp("10"), F1::origin_p, kCust);
  sim.originate(bp("10000"), F1::origin_q, kCust);
  quiesce(sim);
  const auto snap = sim.snapshot();

  const auto run_trial = [&] {
    sim.restore(snap);
    sim.reset_stats();
    sim.fail_link(F1::u4, F1::u6);
    quiesce(sim);
    sim.restore_link(F1::u4, F1::u6);
    quiesce(sim);
    return fault_digest(sim, topo);
  };
  const auto first = run_trial();
  // Grow the interner past the captured state between trials: ids are
  // append-only and every engine query filters by per-node membership, so
  // a bigger intern table must not perturb the replay (DESIGN.md §10).
  sim.restore(snap);
  sim.originate(bp("110011"), F1::u1, kCust);
  quiesce(sim);
  EXPECT_NE(sim.elected(F1::u6, bp("110011")), algebra::kUnreachable);
  const auto second = run_trial();
  const auto third = run_trial();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
  // And the grown prefix is gone again after restore, not just unelected.
  EXPECT_EQ(sim.elected(F1::u1, bp("110011")), algebra::kUnreachable);
  EXPECT_FALSE(sim.originates(F1::u1, bp("110011")));
}

TEST(RibIntern, CrashRestartOnFlatRibRecoversAndReplays) {
  // Crash/restart wipes node state in place (NodeState::clear keeps the
  // io vector sized); the recovery must converge back to the pre-crash
  // routes and replay bit-identically from one snapshot.
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Config config = dragon_config();
  config.session.enabled = true;
  config.session.graceful_restart = true;
  config.session.hold_time = 3.0;
  config.session.keepalive = 1.0;
  config.session.restart_window = 10.0;
  config.session.reestablish_delay = 1.0;
  Simulator sim(topo, alg, config);
  sim.originate(bp("10"), F2::origin_p, kCust);
  sim.originate(bp("10000"), F2::origin_q, kCust);
  quiesce(sim);
  const auto before = fault_digest(sim, topo);
  const auto snap = sim.snapshot();

  const auto run_trial = [&] {
    sim.restore(snap);
    sim.reset_stats();
    sim.crash_node(F2::u2);
    (void)sim.run_bounded(sim.now() + 4.0, 1'000'000);
    sim.restart_node(F2::u2);
    quiesce(sim);
    return fault_digest(sim, topo);
  };
  const auto first = run_trial();
  EXPECT_EQ(first, run_trial());
  // Elected state recovered to the pre-crash routes (stats differ, so
  // compare only the per-node tail of the digest).
  ASSERT_EQ(first.size(), before.size());
  for (std::size_t i = 2; i < before.size(); ++i) {
    EXPECT_EQ(first[i], before[i]) << "entry " << i;
  }
}

TEST(RibIntern, ChaosSweepSequentialVsFourThreadsBitIdentical) {
  // The flat layout must preserve PR 3's guarantee: one Simulator per
  // worker, so a 4-thread sweep is outcome-for-outcome identical to the
  // sequential one.
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  chaos::SweepSpec spec;
  spec.topo = &topo;
  spec.alg = &alg;
  spec.config = dragon_config();
  spec.origins = {{bp("10"), F1::origin_p, kCust},
                  {bp("10000"), F1::origin_q, kCust}};
  spec.params.events = 4;
  spec.params.horizon = 30.0;
  spec.params.restore_prob = 0.7;
  spec.params.origin_flap_prob = 0.2;
  spec.invariants.max_sources = 16;

  util::Rng seeder(21);
  std::vector<std::uint64_t> seeds(24);
  for (auto& s : seeds) s = seeder();

  const auto sequential = chaos::run_schedule_sweep(spec, seeds, nullptr);
  exec::ThreadPool pool(4);
  const auto parallel = chaos::run_schedule_sweep(spec, seeds, &pool);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_TRUE(sequential[i].ok())
        << sequential[i].diagnostics << sequential[i].plan_json;
    EXPECT_EQ(parallel[i].plan_json, sequential[i].plan_json);
    EXPECT_EQ(parallel[i].end_time, sequential[i].end_time);
    EXPECT_EQ(parallel[i].stats.announcements,
              sequential[i].stats.announcements);
    EXPECT_EQ(parallel[i].stats.withdrawals,
              sequential[i].stats.withdrawals);
    EXPECT_EQ(parallel[i].msgs_lost, sequential[i].msgs_lost);
  }
}

}  // namespace
}  // namespace dragon::engine
