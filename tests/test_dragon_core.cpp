#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/gr_algebra.hpp"
#include "dragon/consistency.hpp"
#include "dragon/deaggregation.hpp"
#include "dragon/deployment.hpp"
#include "dragon/filtering.hpp"
#include "paper_networks.hpp"
#include "routecomp/gr_sweep.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace dragon::core {
namespace {

using algebra::Attr;
using algebra::attr;
using algebra::GrAlgebra;
using algebra::GrClass;
using algebra::kUnreachable;
using routecomp::LabeledNetwork;
using topology::NodeId;
using F1 = testing::Figure1;

constexpr Attr kCust = attr(GrClass::kCustomer);
constexpr Attr kPeerA = attr(GrClass::kPeer);
constexpr Attr kProv = attr(GrClass::kProvider);

TEST(CodeCr, DecisionTable) {
  GrAlgebra gr;
  // Equal attributes: filter.
  EXPECT_TRUE(cr_filters(gr, kCust, kCust, false));
  // q less preferred than p: filter ("all the more reason", §3.1).
  EXPECT_TRUE(cr_filters(gr, kProv, kCust, false));
  // q preferred to p: keep.
  EXPECT_FALSE(cr_filters(gr, kCust, kProv, false));
  // The origin of p never filters.
  EXPECT_TRUE(cr_filters(gr, kCust, kCust, false));
  EXPECT_FALSE(cr_filters(gr, kCust, kCust, true));
  // Nothing to filter / no fallback.
  EXPECT_FALSE(cr_filters(gr, kUnreachable, kCust, false));
  EXPECT_FALSE(cr_filters(gr, kCust, kUnreachable, false));
}

TEST(CodeCr, SlackVariant) {
  using algebra::GrPathAlgebra;
  const Attr q_c3 = GrPathAlgebra::make(GrClass::kCustomer, 3);
  const Attr p_c5 = GrPathAlgebra::make(GrClass::kCustomer, 5);
  const Attr p_peer = GrPathAlgebra::make(GrClass::kPeer, 2);
  // Classes equal, q shorter by 2: filtered iff X >= 2.
  EXPECT_FALSE(cr_filters_slack(q_c3, p_c5, 0, false));
  EXPECT_FALSE(cr_filters_slack(q_c3, p_c5, 1, false));
  EXPECT_TRUE(cr_filters_slack(q_c3, p_c5, 2, false));
  EXPECT_TRUE(cr_filters_slack(q_c3, p_c5, -1, false));  // X = infinity
  // q class better than p class: never filtered.
  EXPECT_FALSE(cr_filters_slack(q_c3, p_peer, -1, false));
  // q class worse: always filtered.
  EXPECT_TRUE(cr_filters_slack(p_peer, q_c3, 0, false));
  // Origin of p exempt.
  EXPECT_FALSE(cr_filters_slack(q_c3, p_c5, -1, true));
}

TEST(RuleRa, Definition) {
  GrAlgebra gr;
  // p's attribute must be equal or less preferred than the elected q-route.
  EXPECT_TRUE(ra_allows(gr, kCust, kCust));
  EXPECT_TRUE(ra_allows(gr, kProv, kCust));
  EXPECT_FALSE(ra_allows(gr, kCust, kProv));  // Figure 2's violation
  EXPECT_TRUE(ra_violated(gr, kCust, kProv));
}

TEST(DragonPair, Figure1OptimalState) {
  const auto topo = F1::topology();
  const auto net = LabeledNetwork::from_topology(topo);
  GrAlgebra gr;
  const auto run = run_dragon_pair(gr, net, F1::origin_p, kCust,
                                   F1::origin_q, kCust);
  ASSERT_TRUE(run.converged);

  // §3.1's walkthrough: u2 and u5 filter; u1 ends up oblivious; u3, u4, u6
  // keep q.
  EXPECT_TRUE(run.filters[F1::u2]);
  EXPECT_TRUE(run.filters[F1::u5]);
  EXPECT_TRUE(run.oblivious[F1::u1]);
  EXPECT_FALSE(run.filters[F1::u1]);
  EXPECT_FALSE(run.filters[F1::u3]);
  EXPECT_FALSE(run.filters[F1::u4]);
  EXPECT_FALSE(run.filters[F1::u6]);

  const auto forgo = run.forgo();
  EXPECT_EQ(std::count(forgo.begin(), forgo.end(), 1), 3);

  // The state is route consistent and optimal (Theorem 4).
  const auto report = check_route_consistency(gr, run);
  EXPECT_TRUE(report.route_consistent);
  EXPECT_TRUE(is_optimal(gr, run, F1::origin_p));

  // And correct: every node still delivers to q (Theorem 2).
  const auto delivery =
      check_delivery(gr, net, run, F1::origin_p, F1::origin_q);
  EXPECT_TRUE(delivery.all_delivered());
}

TEST(DragonPair, Figure2RaViolationCreatesBlackHole) {
  // u3 originates p with a customer route although it elects only a
  // provider q-route, violating rule RA; u2 filters q and u3 becomes a
  // black hole for q-destined packets (§3.2).
  const auto topo = testing::Figure2::topology();
  const auto net = LabeledNetwork::from_topology(topo);
  using F2 = testing::Figure2;
  GrAlgebra gr;
  const auto run = run_dragon_pair(gr, net, F2::origin_p, kCust,
                                   F2::origin_q, kCust);
  ASSERT_TRUE(run.converged);
  EXPECT_TRUE(run.filters[F2::u2]);
  const auto delivery =
      check_delivery(gr, net, run, F2::origin_p, F2::origin_q);
  EXPECT_EQ(delivery.outcome[F2::u3], Delivery::kBlackHole);
  EXPECT_EQ(delivery.outcome[F2::u4], Delivery::kBlackHole);
}

TEST(DragonPair, Figure2RaCompliantOriginationIsSafe) {
  // If u3 instead originates p with a provider route (the RA-compliant
  // choice), only u4 learns p, it may filter q, and delivery still works.
  const auto topo = testing::Figure2::topology();
  const auto net = LabeledNetwork::from_topology(topo);
  using F2 = testing::Figure2;
  GrAlgebra gr;
  ASSERT_TRUE(ra_allows(gr, kProv, kProv));
  const auto run = run_dragon_pair(gr, net, F2::origin_p, kProv,
                                   F2::origin_q, kCust);
  ASSERT_TRUE(run.converged);
  // u4 elects provider routes for both p and q, so it filters q.
  EXPECT_TRUE(run.filters[F2::u4]);
  const auto delivery =
      check_delivery(gr, net, run, F2::origin_p, F2::origin_q);
  EXPECT_TRUE(delivery.all_delivered());
}

TEST(DragonPair, Figure3NonIsotoneBreaksRouteConsistency) {
  const auto alg = testing::Figure3::algebra_instance();
  const auto net = testing::Figure3::network();
  using F3 = testing::Figure3;
  const auto run = run_dragon_pair(alg, net, F3::origin_p, F3::kCust,
                                   F3::origin_q, F3::kCust);
  ASSERT_TRUE(run.converged);
  // Before DRAGON: u5's q-route comes from its less preferred provider u1,
  // its p-route from the preferred provider u3 (§3.3).
  EXPECT_EQ(run.q_before.attr[F3::u5], F3::kProvLess);
  EXPECT_EQ(run.p.attr[F3::u5], F3::kProvPref);
  // After everyone runs CR, u5 forwards q-traffic along the p-route:
  // a different attribute -> not route consistent.
  const auto report = check_route_consistency(alg, run);
  EXPECT_FALSE(report.route_consistent);
  EXPECT_NE(std::find(report.violations.begin(), report.violations.end(),
                      F3::u5),
            report.violations.end());
}

TEST(PartialDeployment, Figure4PdOrderIsConsistentThroughout) {
  const auto topo = testing::Figure4::topology();
  const auto net = LabeledNetwork::from_topology(topo);
  using F4 = testing::Figure4;
  GrAlgebra gr;

  const auto q_state = routecomp::gr_sweep(topo, F4::origin_q);
  // §3.4: u3 elects a peer q-route; u2 and u4 elect customer q-routes.
  EXPECT_EQ(q_state.cls[F4::u3], routecomp::kPeer);
  EXPECT_EQ(q_state.cls[F4::u2], routecomp::kCustomer);
  EXPECT_EQ(q_state.cls[F4::u4], routecomp::kCustomer);

  const auto order = pd_order(topo, q_state);
  ASSERT_EQ(order.size(), topo.node_count());
  // Condition PD: u2 (provider) must appear before its customer u4.
  const auto pos = [&](NodeId u) {
    return std::find(order.begin(), order.end(), u) - order.begin();
  };
  EXPECT_LT(pos(F4::u2), pos(F4::u4));
  EXPECT_LT(pos(F4::u3), pos(F4::u2));  // peer-electing nodes first

  const auto staged = staged_deployment(gr, net, F4::origin_p, kCust,
                                        F4::origin_q, kCust, order);
  EXPECT_TRUE(staged.all_stages_consistent());
}

TEST(PartialDeployment, Figure4ViolatingOrderBreaksAnIntermediateStage) {
  const auto topo = testing::Figure4::topology();
  const auto net = LabeledNetwork::from_topology(topo);
  using F4 = testing::Figure4;
  GrAlgebra gr;
  // u4 adopting first (violating PD) yields a non-route-consistent stage:
  // u2's q-route degrades from customer to peer (§3.4, right of Fig. 4).
  const std::vector<NodeId> order{F4::u4, F4::u3, F4::u2, F4::u1, F4::u5,
                                  F4::u6};
  const auto staged = staged_deployment(gr, net, F4::origin_p, kCust,
                                        F4::origin_q, kCust, order);
  EXPECT_FALSE(staged.all_stages_consistent());
  // Stage 1 (only u4 deployed) is the broken one.
  EXPECT_FALSE(staged.stage_route_consistent[1]);
  // Full deployment is consistent again.
  EXPECT_TRUE(staged.stage_route_consistent.back());
}

TEST(Deaggregation, PaperExample) {
  const auto p = *prefix::Prefix::from_bit_string("10");
  const auto q = *prefix::Prefix::from_bit_string("10000");
  const prefix::Prefix missing[1] = {q};
  const auto pieces = deaggregate_excluding(p, missing);
  std::vector<std::string> got;
  for (const auto& piece : pieces) got.push_back(piece.to_bit_string());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::string>{"10001", "1001", "101"}));
}

TEST(Deaggregation, MultipleMissing) {
  const auto p = *prefix::Prefix::from_bit_string("1");
  const prefix::Prefix missing[2] = {
      *prefix::Prefix::from_bit_string("100"),
      *prefix::Prefix::from_bit_string("111")};
  const auto pieces = deaggregate_excluding(p, missing);
  std::uint64_t total = 0;
  for (const auto& piece : pieces) {
    EXPECT_TRUE(p.covers(piece));
    for (const auto& m : missing) {
      EXPECT_FALSE(piece.covers(m));
      EXPECT_FALSE(m.covers(piece));
    }
    total += piece.size();
  }
  EXPECT_EQ(total, p.size() - missing[0].size() - missing[1].size());
}

TEST(Deaggregation, MissingEverythingYieldsNothing) {
  const auto p = *prefix::Prefix::from_bit_string("10");
  const prefix::Prefix missing[1] = {p};
  EXPECT_TRUE(deaggregate_excluding(p, missing).empty());
}

class IsotoneOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsotoneOptimality, RandomGrNetworksReachOptimalConsistentStates) {
  // Theorem 4 as a property test: on random Internet-like topologies with
  // the (isotone) GR algebra, the CR fixpoint is route consistent, optimal,
  // and delivers every packet.
  topology::GeneratorParams params;
  params.tier1_count = 3;
  params.transit_count = 12;
  params.stub_count = 35;
  params.seed = GetParam();
  const auto gen = topology::generate_internet(params);
  const auto net = LabeledNetwork::from_topology(gen.graph);
  GrAlgebra gr;
  util::Rng rng(GetParam() * 77 + 1);

  for (int trial = 0; trial < 6; ++trial) {
    // Pick an origin of p and delegate q to a node in p's customer cone
    // (the realistic alignment; rule RA then holds with customer routes).
    const auto tp = static_cast<NodeId>(rng.below(gen.graph.node_count()));
    // Customer cone of tp via BFS down provider->customer links.
    std::vector<NodeId> cone;
    std::vector<char> in_cone(gen.graph.node_count(), 0);
    std::vector<NodeId> frontier{tp};
    in_cone[tp] = 1;
    while (!frontier.empty()) {
      const NodeId x = frontier.back();
      frontier.pop_back();
      cone.push_back(x);
      for (const auto& nb : gen.graph.neighbors(x)) {
        if (nb.rel == topology::Rel::kCustomer && !in_cone[nb.id]) {
          in_cone[nb.id] = 1;
          frontier.push_back(nb.id);
        }
      }
    }
    const NodeId tq = cone[rng.below(cone.size())];

    const auto run = run_dragon_pair(gr, net, tp, kCust, tq, kCust);
    ASSERT_TRUE(run.converged);
    EXPECT_TRUE(check_route_consistency(gr, run).route_consistent);
    EXPECT_TRUE(is_optimal(gr, run, tp));
    EXPECT_TRUE(check_delivery(gr, net, run, tp, tq).all_delivered());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsotoneOptimality,
                         ::testing::Values(41, 42, 43, 44, 45));

}  // namespace
}  // namespace dragon::core
