#include "prefix/aggregation_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace dragon::prefix {
namespace {

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

TEST(AggregationTree, PaperFigure5Example) {
  // PI prefixes 100, 1010, 1011 aggregate into 10 (§3.7, Fig. 5).
  const std::vector<Prefix> pi{bp("100"), bp("1010"), bp("1011")};
  const auto candidates = compute_aggregation_prefixes(pi);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].aggregate, bp("10"));
  EXPECT_EQ(candidates[0].covered.size(), 3u);
}

TEST(AggregationTree, NoNewAddressSpace) {
  // 100 and 1011 do not tile 10 (1010 missing): no aggregate.
  const std::vector<Prefix> pi{bp("100"), bp("1011")};
  EXPECT_TRUE(compute_aggregation_prefixes(pi).empty());
}

TEST(AggregationTree, MaximalAggregateChosen) {
  // A full tiling of 1 aggregates at 1, not at 10/11 separately.
  const std::vector<Prefix> pi{bp("100"), bp("101"), bp("110"), bp("111")};
  const auto candidates = compute_aggregation_prefixes(pi);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].aggregate, bp("1"));
  EXPECT_EQ(candidates[0].covered.size(), 4u);
}

TEST(AggregationTree, DisjointCandidates) {
  const std::vector<Prefix> pi{bp("000"), bp("001"),   // tile 00
                               bp("110"), bp("111"),   // tile 11
                               bp("01000")};           // lone prefix
  const auto candidates = compute_aggregation_prefixes(pi);
  ASSERT_EQ(candidates.size(), 2u);
  std::set<std::string> got;
  for (const auto& c : candidates) got.insert(c.aggregate.to_bit_string());
  EXPECT_EQ(got, (std::set<std::string>{"00", "11"}));
}

TEST(AggregationTree, EmptyInput) {
  EXPECT_TRUE(compute_aggregation_prefixes({}).empty());
}

class AggregationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregationProperty, CandidatesAreExactTilings) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    // Build a random non-overlapping prefix set by splitting the space.
    std::vector<Prefix> pool{Prefix(0, 2), Prefix(1u << 30, 2)};
    for (int step = 0; step < 40; ++step) {
      const std::size_t i = rng.below(pool.size());
      if (pool[i].length() >= 12) continue;
      const Prefix victim = pool[i];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
      pool.push_back(victim.child(0));
      if (!rng.chance(0.3)) pool.push_back(victim.child(1));  // else: a hole
    }
    const auto candidates = compute_aggregation_prefixes(pool);
    for (const auto& cand : candidates) {
      // Covered prefixes lie inside the aggregate and tile it exactly.
      ASSERT_GE(cand.covered.size(), 2u);
      std::uint64_t total = 0;
      for (std::int32_t idx : cand.covered) {
        const Prefix& p = pool[static_cast<std::size_t>(idx)];
        EXPECT_TRUE(cand.aggregate.covers(p));
        total += p.size();
      }
      EXPECT_EQ(total, cand.aggregate.size());
      // Maximality: the trie parent of the aggregate is not itself tiled by
      // pool members (otherwise the parent would have been emitted).
      std::uint64_t parent_total = 0;
      for (const Prefix& p : pool) {
        if (cand.aggregate.trie_parent().covers(p)) parent_total += p.size();
      }
      EXPECT_LT(parent_total, cand.aggregate.trie_parent().size());
    }
    // Candidates are pairwise disjoint.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      for (std::size_t j = i + 1; j < candidates.size(); ++j) {
        EXPECT_FALSE(candidates[i].aggregate.covers(candidates[j].aggregate));
        EXPECT_FALSE(candidates[j].aggregate.covers(candidates[i].aggregate));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationProperty,
                         ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace dragon::prefix
