#include <gtest/gtest.h>

#include "algebra/custom_algebra.hpp"
#include "algebra/gr_algebra.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "algebra/property_check.hpp"
#include "algebra/shortest_path_algebra.hpp"
#include "paper_networks.hpp"
#include "util/rng.hpp"

namespace dragon::algebra {
namespace {

constexpr Attr kCust = attr(GrClass::kCustomer);
constexpr Attr kPeerA = attr(GrClass::kPeer);
constexpr Attr kProv = attr(GrClass::kProvider);
constexpr LabelId kFromCust = label(GrLabel::kFromCustomer);
constexpr LabelId kFromPeer = label(GrLabel::kFromPeer);
constexpr LabelId kFromProv = label(GrLabel::kFromProvider);

TEST(GrAlgebra, PreferenceOrder) {
  GrAlgebra gr;
  EXPECT_TRUE(gr.prefer(kCust, kPeerA));
  EXPECT_TRUE(gr.prefer(kPeerA, kProv));
  EXPECT_TRUE(gr.prefer(kProv, kUnreachable));
  EXPECT_FALSE(gr.prefer(kProv, kCust));
  EXPECT_FALSE(gr.prefer(kCust, kCust));
  EXPECT_TRUE(gr.prefer_eq(kCust, kCust));
}

TEST(GrAlgebra, ExportRules) {
  GrAlgebra gr;
  // Only customer routes are exported to providers/peers (§2).
  EXPECT_EQ(gr.extend(kFromCust, kCust), kCust);
  EXPECT_EQ(gr.extend(kFromCust, kPeerA), kUnreachable);
  EXPECT_EQ(gr.extend(kFromCust, kProv), kUnreachable);
  EXPECT_EQ(gr.extend(kFromPeer, kCust), kPeerA);
  EXPECT_EQ(gr.extend(kFromPeer, kPeerA), kUnreachable);
  EXPECT_EQ(gr.extend(kFromPeer, kProv), kUnreachable);
  // Everything is exported to customers and becomes a provider route.
  EXPECT_EQ(gr.extend(kFromProv, kCust), kProv);
  EXPECT_EQ(gr.extend(kFromProv, kPeerA), kProv);
  EXPECT_EQ(gr.extend(kFromProv, kProv), kProv);
  // Labels fix the unreachable attribute.
  for (LabelId l : gr.label_support()) {
    EXPECT_EQ(gr.extend(l, kUnreachable), kUnreachable);
  }
}

TEST(GrAlgebra, IsIsotone) {
  GrAlgebra gr;
  EXPECT_TRUE(is_isotone(gr));  // §3.3 argues this explicitly
}

TEST(GrAlgebra, AttrNames) {
  GrAlgebra gr;
  EXPECT_EQ(gr.attr_name(kCust), "customer");
  EXPECT_EQ(gr.attr_name(kPeerA), "peer");
  EXPECT_EQ(gr.attr_name(kProv), "provider");
  EXPECT_EQ(gr.attr_name(kUnreachable), "unreachable");
}

TEST(GrPathAlgebra, LexicographicOnClassThenLength) {
  GrPathAlgebra alg;
  const Attr cust2 = GrPathAlgebra::make(GrClass::kCustomer, 2);
  const Attr cust3 = GrPathAlgebra::make(GrClass::kCustomer, 3);
  const Attr peer1 = GrPathAlgebra::make(GrClass::kPeer, 1);
  EXPECT_TRUE(alg.prefer(cust2, cust3));
  EXPECT_TRUE(alg.prefer(cust3, peer1));  // class dominates length
  EXPECT_EQ(GrPathAlgebra::class_of(peer1), GrClass::kPeer);
  EXPECT_EQ(GrPathAlgebra::path_length_of(peer1), 1u);
}

TEST(GrPathAlgebra, ExtendIncrementsLength) {
  GrPathAlgebra alg;
  const Attr cust2 = GrPathAlgebra::make(GrClass::kCustomer, 2);
  EXPECT_EQ(alg.extend(kFromCust, cust2),
            GrPathAlgebra::make(GrClass::kCustomer, 3));
  EXPECT_EQ(alg.extend(kFromPeer, cust2),
            GrPathAlgebra::make(GrClass::kPeer, 3));
  EXPECT_EQ(alg.extend(kFromProv, cust2),
            GrPathAlgebra::make(GrClass::kProvider, 3));
  EXPECT_EQ(alg.extend(kFromCust, GrPathAlgebra::make(GrClass::kPeer, 1)),
            kUnreachable);
}

TEST(GrPathAlgebra, WholeAttributeIsNotIsotone) {
  // Lexicographic (GR class, AS-path length) is NOT isotone: a customer
  // route with a long path is preferred to a peer route with a short one,
  // but exporting both to a customer collapses the classes to "provider"
  // and only the lengths remain — reversing the preference.  This is why
  // §3.5 runs code CR on L-attributes with slack on AS-path lengths rather
  // than on whole attributes.
  GrPathAlgebra alg;
  const auto violation = find_isotonicity_violation(alg);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->label, kFromProv);
  // The class projection alone (the L-attribute) is isotone: that is the
  // plain GR algebra, checked above.
}

TEST(ShortestPathAlgebra, AddsWeightsAndIsIsotone) {
  ShortestPathAlgebra sp;
  EXPECT_EQ(sp.extend(5, 10), 15u);
  EXPECT_TRUE(sp.prefer(3, 7));
  EXPECT_TRUE(is_isotone(sp));
  EXPECT_EQ(sp.extend(5, kUnreachable), kUnreachable);
}

TEST(TableAlgebra, ValidatesMaps) {
  EXPECT_THROW(TableAlgebra({"a"}, {{0, 1}}), std::invalid_argument);
  EXPECT_THROW(TableAlgebra({"a", "b"}, {{0, 5}}), std::invalid_argument);
  const TableAlgebra ok({"a", "b"}, {{1, kUnreachable}});
  EXPECT_EQ(ok.extend(0, 0), 1u);
  EXPECT_EQ(ok.extend(0, 1), kUnreachable);
}

TEST(TableAlgebra, Figure3AlgebraIsNotIsotone) {
  const auto alg = testing::Figure3::algebra_instance();
  const auto violation = find_isotonicity_violation(alg);
  ASSERT_TRUE(violation.has_value());
  // The non-isotone label is u3's export policy towards u5 (customer routes
  // blocked, provider routes passed).
  EXPECT_EQ(violation->label, testing::Figure3::kU3ToU5);
}

TEST(StrictAbsorbency, CustomerProviderCycleViolates) {
  // A cycle where each node is a customer of the next: every node learns
  // with the "from provider" label.  Condition (1) fails (e.g. all-provider
  // assignment), which is why the GR correctness condition bans such
  // cycles (§2).
  GrAlgebra gr;
  const std::vector<LabelId> cycle{kFromProv, kFromProv, kFromProv};
  const auto witness = find_absorbency_violation(gr, cycle);
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(is_strictly_absorbent(gr, cycle));
}

TEST(StrictAbsorbency, ValleyFreeCyclesAreAbsorbent) {
  GrAlgebra gr;
  // A provider-customer chain closed with a "from customer" hop: around the
  // cycle one node is always the top provider and prefers its customer
  // route.
  EXPECT_TRUE(is_strictly_absorbent(gr, {kFromProv, kFromProv, kFromCust}));
  EXPECT_TRUE(is_strictly_absorbent(gr, {kFromCust, kFromCust, kFromProv}));
  EXPECT_TRUE(is_strictly_absorbent(gr, {kFromCust, kFromPeer, kFromProv}));
  // All-peer cycles: peer routes are not re-exported to peers, so the cycle
  // absorbs.
  EXPECT_TRUE(is_strictly_absorbent(gr, {kFromPeer, kFromPeer, kFromPeer}));
}

TEST(StrictAbsorbency, TwoNodeProviderLoop) {
  GrAlgebra gr;
  // Mutual providers (a 2-cycle of "from provider" labels) would never
  // absorb; mutual customer/provider does.
  EXPECT_FALSE(is_strictly_absorbent(gr, {kFromProv, kFromProv}));
  EXPECT_TRUE(is_strictly_absorbent(gr, {kFromProv, kFromCust}));
}

TEST(GrPathVectorAlgebra, ElectionIgnoresPathIdentity) {
  using PV = GrPathVectorAlgebra;
  PV alg;
  const Attr a = PV::make(GrClass::kCustomer, 2, 0x1234);
  const Attr b = PV::make(GrClass::kCustomer, 2, 0x4321);
  // Same class and length: neither is preferred, but the values differ —
  // a path change propagates without changing the election.
  EXPECT_FALSE(alg.prefer(a, b));
  EXPECT_FALSE(alg.prefer(b, a));
  EXPECT_NE(a, b);
  EXPECT_TRUE(alg.prefer(PV::make(GrClass::kCustomer, 1, 9), a));
  EXPECT_TRUE(alg.prefer(a, PV::make(GrClass::kPeer, 0, 0)));
  EXPECT_TRUE(alg.prefer(a, kUnreachable));
}

TEST(GrPathVectorAlgebra, ExtendFollowsGrRulesAndMixesLinkId) {
  using PV = GrPathVectorAlgebra;
  PV alg;
  const Attr cust = PV::make(GrClass::kCustomer, 1, 7);
  const auto l1 = PV::make_label(10, GrLabel::kFromCustomer);
  const auto l2 = PV::make_label(11, GrLabel::kFromCustomer);
  const Attr via1 = alg.extend(l1, cust);
  const Attr via2 = alg.extend(l2, cust);
  EXPECT_EQ(PV::class_of(via1), GrClass::kCustomer);
  EXPECT_EQ(PV::path_length_of(via1), 2u);
  // Different links leave different path identities.
  EXPECT_NE(via1, via2);
  EXPECT_EQ(PV::path_length_of(via2), 2u);
  // Export restrictions match plain GR.
  EXPECT_EQ(alg.extend(PV::make_label(10, GrLabel::kFromPeer),
                       PV::make(GrClass::kProvider, 1, 0)),
            kUnreachable);
  EXPECT_EQ(alg.extend(l1, kUnreachable), kUnreachable);
}

TEST(PolicyFamilies, GrWithSiblingsIsIsotone) {
  // §3.3 cites routing policies with siblings (Liao et al.) as another
  // isotone family DRAGON is optimal under.
  const auto alg = TableAlgebra::gao_rexford_with_siblings();
  EXPECT_TRUE(is_isotone(alg));
  // The sibling label is the identity on reachable attributes.
  EXPECT_EQ(alg.extend(3, 0), 0u);
  EXPECT_EQ(alg.extend(3, 1), 1u);
  EXPECT_EQ(alg.extend(3, 2), 2u);
  // The GR sub-labels behave exactly like GrAlgebra.
  GrAlgebra gr;
  for (LabelId l : {0, 1, 2}) {
    for (Attr a : {0u, 1u, 2u}) {
      EXPECT_EQ(alg.extend(l, a), gr.extend(l, a));
    }
  }
}

TEST(PolicyFamilies, NextHopPoliciesAreIsotone) {
  // §3.3 cites next-hop routing (Schapira et al.) as isotone: labels are
  // constant maps, so preference order is trivially preserved.
  for (std::size_t ranks : {2u, 3u, 5u}) {
    const auto alg = TableAlgebra::next_hop(ranks);
    EXPECT_TRUE(is_isotone(alg)) << ranks;
    for (std::size_t l = 0; l < ranks; ++l) {
      for (std::size_t a = 0; a < ranks; ++a) {
        EXPECT_EQ(alg.extend(static_cast<LabelId>(l),
                             static_cast<Attr>(a)),
                  static_cast<Attr>(l));
      }
    }
  }
}

class RandomAlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomAlgebraProperty, IsotonicityWitnessIsGenuine) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto alg = TableAlgebra::random(rng, 4, 3, 0.2);
    const auto violation = find_isotonicity_violation(alg);
    if (violation) {
      // Re-check the reported witness by hand.
      EXPECT_TRUE(alg.prefer_eq(violation->preferred, violation->less_preferred));
      const Attr ea = alg.extend(violation->label, violation->preferred);
      const Attr eb = alg.extend(violation->label, violation->less_preferred);
      EXPECT_FALSE(alg.prefer_eq(ea, eb));
    } else {
      // Exhaustively confirm isotonicity.
      for (LabelId l : alg.label_support()) {
        for (Attr a : alg.attribute_support()) {
          for (Attr b : alg.attribute_support()) {
            if (alg.prefer_eq(a, b)) {
              EXPECT_TRUE(alg.prefer_eq(alg.extend(l, a), alg.extend(l, b)));
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAlgebraProperty,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace dragon::algebra
