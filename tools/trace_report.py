#!/usr/bin/env python3
"""Speedup-decomposition report over the repo's Chrome span traces.

Reads a trace-event JSON produced by ``--span-trace`` (see
src/obs/trace_export.hpp) and attributes every thread's wall-clock to
one of four buckets, using innermost-span self-time so nested spans
never double-count::

    idle     pool/idle            worker blocked waiting for work
    merge    exec/shard_merge     per-chunk metrics shards folded in
    commit   exec/commit_wait     ordered join / in-order trial commits
             bench/commit
    compute  everything else      chunk bodies, trials, engine drains

The report prints a per-thread table (with attribution coverage: the
fraction of the thread's active window covered by spans), a concurrency
profile of the compute bucket (how much wall-clock had k threads
computing at once), and the derived decomposition: serial fraction,
average parallelism, worker imbalance, merge/commit overhead.

``--check`` turns the tool into a validator for CI smoke tests: it
verifies the document structure (metadata rows, complete events, proper
per-thread nesting) and, with ``--min-coverage``, that attribution
covers at least that fraction of every thread's active window.  Exit
status is non-zero on any violation.

Usage:
    trace_report.py build/trace.json [--top 10]
    trace_report.py build/trace.json --check --min-coverage 0.9
"""

import argparse
import json
import sys
from collections import defaultdict

BUCKETS = ("compute", "idle", "merge", "commit")

# (cat, name) -> bucket; anything unlisted is compute.
BUCKET_OF = {
    ("pool", "idle"): "idle",
    ("exec", "shard_merge"): "merge",
    ("exec", "commit_wait"): "commit",
    ("bench", "commit"): "commit",
}


class Span(object):
    __slots__ = ("start", "end", "cpu", "cat", "name", "bucket", "children")

    def __init__(self, start, end, cpu, cat, name):
        self.start = start            # integer ns
        self.end = end                # integer ns
        self.cpu = cpu                # thread CPU ns inside the span
        self.cat = cat
        self.name = name
        self.bucket = BUCKET_OF.get((cat, name), "compute")
        self.children = []


def load_trace(path):
    """Returns (doc, threads) where threads maps tid -> sorted [Span]."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    threads = defaultdict(list)
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        # ts/dur are microseconds with ns precision; integer ns below
        # keeps the nesting arithmetic exact.  tdur (thread CPU time) is
        # optional so traces from before the field existed still load.
        start = int(round(float(ev["ts"]) * 1000.0))
        dur = int(round(float(ev["dur"]) * 1000.0))
        cpu = int(round(float(ev.get("tdur", 0.0)) * 1000.0))
        threads[ev["tid"]].append(
            Span(start, start + dur, cpu,
                 ev.get("cat", ""), ev.get("name", "")))
    for spans in threads.values():
        spans.sort(key=lambda s: (s.start, -(s.end - s.start)))
    return doc, dict(threads)


def thread_names(doc):
    names = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev["tid"]] = ev.get("args", {}).get("name", "")
    return names


def build_forest(spans):
    """Nests sorted spans into trees; returns (roots, errors).

    Spans from one RAII-instrumented thread are either disjoint or
    properly nested; anything else is a malformed trace and is reported
    rather than silently mis-attributed.
    """
    roots, stack, errors = [], [], []
    for s in spans:
        while stack and stack[-1].end <= s.start:
            stack.pop()
        if stack and s.end > stack[-1].end:
            errors.append(
                "overlap: %s/%s [%d,%d) vs enclosing %s/%s [%d,%d)"
                % (s.cat, s.name, s.start, s.end, stack[-1].cat,
                   stack[-1].name, stack[-1].start, stack[-1].end))
            continue
        if stack:
            stack[-1].children.append(s)
        else:
            roots.append(s)
        stack.append(s)
    return roots, errors


def self_partition(node, out_time, out_intervals):
    """Splits `node` into self segments (gaps between children).

    Self time lands in out_time[bucket]; compute-bucket segments are
    also collected as intervals for the concurrency sweep.
    """
    cursor = node.start
    for child in node.children:
        if cursor < child.start:
            _account(node, cursor, child.start, out_time, out_intervals)
        cursor = max(cursor, child.end)
        self_partition(child, out_time, out_intervals)
    if cursor < node.end:
        _account(node, cursor, node.end, out_time, out_intervals)


def _account(node, t0, t1, out_time, out_intervals):
    out_time[node.bucket] += t1 - t0
    if node.bucket == "compute":
        out_intervals.append((t0, t1))


def concurrency_profile(intervals, t_min, t_max):
    """Returns {k: ns with exactly k compute intervals active} over
    [t_min, t_max)."""
    if t_min >= t_max:
        return {}
    events = []
    for t0, t1 in intervals:
        events.append((t0, 1))
        events.append((t1, -1))
    events.sort()
    profile = defaultdict(int)
    level, cursor = 0, t_min
    for t, delta in events:
        t = min(max(t, t_min), t_max)
        if t > cursor:
            profile[level] += t - cursor
            cursor = t
        level += delta
    if cursor < t_max:
        profile[0] += t_max - cursor
    return dict(profile)


def analyze(doc, threads):
    """Per-thread buckets + coverage, plus the global decomposition."""
    names = thread_names(doc)
    per_thread, all_compute, errors = [], [], []
    t_min = t_max = None
    for tid in sorted(threads):
        spans = threads[tid]
        roots, errs = build_forest(spans)
        errors.extend("tid %s: %s" % (tid, e) for e in errs)
        time = dict.fromkeys(BUCKETS, 0)
        intervals = []
        for root in roots:
            self_partition(root, time, intervals)
        first = min(s.start for s in spans)
        last = max(s.end for s in spans)
        t_min = first if t_min is None else min(t_min, first)
        t_max = last if t_max is None else max(t_max, last)
        attributed = sum(time.values())
        window = last - first
        # Root spans tile the thread's instrumented wall without
        # double-counting, so their cpu sum is the thread's CPU inside
        # spans; the remainder is time spent descheduled (or the field
        # is absent in an old trace, where cpu stays 0).
        root_wall = sum(r.end - r.start for r in roots)
        root_cpu = sum(r.cpu for r in roots)
        per_thread.append({
            "tid": tid,
            "name": names.get(tid, "tid-%s" % tid),
            "window": window,
            "attributed": attributed,
            "coverage": attributed / window if window > 0 else 1.0,
            "time": time,
            "cpu": root_cpu,
            "desched": max(0, root_wall - root_cpu),
            "spans": len(spans),
        })
        all_compute.extend(intervals)
    profile = concurrency_profile(all_compute, t_min or 0, t_max or 0)
    return {
        "threads": per_thread,
        "profile": profile,
        "wall": (t_max - t_min) if per_thread else 0,
        "errors": errors,
    }


def site_totals(threads, top):
    """Top (cat, name) sites by total *span* duration (not self time):
    the quick 'where does the time go' list."""
    totals = defaultdict(lambda: [0, 0])  # (cat, name) -> [ns, count]
    for spans in threads.values():
        for s in spans:
            entry = totals[(s.cat, s.name)]
            entry[0] += s.end - s.start
            entry[1] += 1
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][0])
    return ranked[:top]


def fmt_s(ns):
    return "%10.4f" % (ns / 1e9)


def print_report(doc, threads, analysis, top):
    wall = analysis["wall"]
    print("trace_report: %d thread(s), wall clock %.4f s"
          % (len(analysis["threads"]), wall / 1e9))
    dropped = {k: v for k, v in doc.get("otherData", {}).items()
               if k.startswith("dropped.")}
    total_dropped = int(dropped.get("dropped.total", "0"))
    if total_dropped:
        print("trace_report: WARNING: %d span(s) dropped to ring wrap -- "
              "totals undercount (%s)"
              % (total_dropped,
                 ", ".join("%s=%s" % kv for kv in sorted(dropped.items()))))

    print("\nper-thread attribution (seconds):")
    print("  %-18s %7s %10s %10s %10s %10s %10s %10s %10s  %s"
          % ("thread", "spans", "compute", "idle", "merge", "commit",
             "cpu", "desched", "window", "coverage"))
    totals = dict.fromkeys(BUCKETS, 0)
    cpu_total = desched_total = 0
    for t in analysis["threads"]:
        for b in BUCKETS:
            totals[b] += t["time"][b]
        cpu_total += t["cpu"]
        desched_total += t["desched"]
        print("  %-18s %7d %s %s %s %s %s %s %s  %6.1f%%"
              % (t["name"], t["spans"], fmt_s(t["time"]["compute"]),
                 fmt_s(t["time"]["idle"]), fmt_s(t["time"]["merge"]),
                 fmt_s(t["time"]["commit"]), fmt_s(t["cpu"]),
                 fmt_s(t["desched"]), fmt_s(t["window"]),
                 100.0 * t["coverage"]))

    profile = analysis["profile"]
    busy = sum(ns for k, ns in profile.items() if k >= 1)
    weighted = sum(k * ns for k, ns in profile.items())
    serial = sum(ns for k, ns in profile.items() if k <= 1)
    print("\nconcurrency profile (compute bucket):")
    for k in sorted(profile):
        ns = profile[k]
        print("  %2d thread(s) computing: %s s  (%5.1f%% of wall)"
              % (k, fmt_s(ns).strip(), 100.0 * ns / wall if wall else 0.0))

    workers = [t for t in analysis["threads"]
               if t["name"].startswith("pool.worker")]
    pool = workers if workers else analysis["threads"]
    comp = [t["time"]["compute"] for t in pool]
    imbalance = (max(comp) - min(comp)) if comp else 0

    print("\nspeedup decomposition:")
    print("  wall clock:        %s s" % fmt_s(wall).strip())
    print("  total compute:     %s s  (serial-equivalent work)"
          % fmt_s(totals["compute"]).strip())
    if wall:
        print("  realized speedup:  %10.2fx  (total compute / wall)"
              % (totals["compute"] / wall))
        print("  serial fraction:   %9.1f%%  (wall with <=1 thread "
              "computing)" % (100.0 * serial / wall))
    if busy:
        print("  avg parallelism:   %10.2f   (while any compute ran)"
              % (weighted / busy))
    print("  worker imbalance:  %s s  (max-min compute%s)"
          % (fmt_s(imbalance).strip(),
             "" if workers else "; no pool workers in trace"))
    print("  merge overhead:    %s s" % fmt_s(totals["merge"]).strip())
    print("  commit/wait:       %s s" % fmt_s(totals["commit"]).strip())
    print("  idle (all threads):%s s" % fmt_s(totals["idle"]).strip())
    print("  thread cpu:        %s s  (sum of root-span thread CPU)"
          % fmt_s(cpu_total).strip())
    print("  descheduled:       %s s  (instrumented wall - cpu; "
          "oversubscription shows up here)" % fmt_s(desched_total).strip())

    if top:
        print("\ntop sites by total span time:")
        for (cat, name), (ns, count) in site_totals(threads, top):
            print("  %-28s %s s  x%d"
                  % ("%s/%s" % (cat, name), fmt_s(ns).strip(), count))


def check(doc, threads, analysis, min_coverage):
    """Structural + coverage validation; returns a list of problems."""
    problems = []
    if not isinstance(doc.get("traceEvents"), list):
        problems.append("traceEvents missing or not a list")
        return problems
    if "otherData" not in doc:
        problems.append("otherData missing")
    if doc.get("displayTimeUnit") != "ms":
        problems.append("displayTimeUnit != 'ms'")

    names = thread_names(doc)
    has_process = any(ev.get("ph") == "M" and ev.get("name") == "process_name"
                      for ev in doc["traceEvents"])
    if not has_process:
        problems.append("no process_name metadata row")
    for ev in doc["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        for field in ("tid", "ts", "dur", "cat", "name"):
            if field not in ev:
                problems.append("complete event missing %r: %r" % (field, ev))
                break
        else:
            if float(ev["dur"]) < 0:
                problems.append("negative dur: %r" % ev)
            if "tdur" in ev and float(ev["tdur"]) < 0:
                problems.append("negative tdur: %r" % ev)

    if not threads:
        problems.append("no complete ('ph':'X') span events")
    for tid in threads:
        if tid not in names:
            problems.append("tid %s has spans but no thread_name row" % tid)

    problems.extend(analysis["errors"])
    for t in analysis["threads"]:
        if t["coverage"] < min_coverage:
            problems.append(
                "thread %s coverage %.1f%% below --min-coverage %.1f%%"
                % (t["name"], 100.0 * t["coverage"], 100.0 * min_coverage))
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace JSON from --span-trace")
    ap.add_argument("--check", action="store_true",
                    help="validate structure/coverage instead of reporting; "
                         "non-zero exit on any violation")
    ap.add_argument("--min-coverage", type=float, default=0.0,
                    help="with --check: minimum per-thread attribution "
                         "coverage, 0..1 (default: %(default)s)")
    ap.add_argument("--top", type=int, default=12,
                    help="sites to list in the hot-site table "
                         "(default: %(default)s; 0 disables)")
    args = ap.parse_args()

    try:
        doc, threads = load_trace(args.trace)
    except (OSError, ValueError, KeyError) as err:
        print("trace_report: ERROR: cannot load %s: %s" % (args.trace, err))
        return 2
    analysis = analyze(doc, threads)

    if args.check:
        problems = check(doc, threads, analysis, args.min_coverage)
        if problems:
            for p in problems:
                print("trace_report: FAIL: %s" % p)
            return 1
        spans = sum(len(s) for s in threads.values())
        print("trace_report: check passed (%d thread(s), %d span(s), "
              "min coverage %.1f%%)"
              % (len(threads), spans,
                 100.0 * min((t["coverage"] for t in analysis["threads"]),
                             default=1.0)))
        return 0

    if not threads:
        print("trace_report: no span events in %s" % args.trace)
        return 1
    print_report(doc, threads, analysis, args.top)
    for e in analysis["errors"]:
        print("trace_report: WARNING: %s" % e)
    return 0


if __name__ == "__main__":
    sys.exit(main())
