#!/usr/bin/env python3
"""Unit tests for tools/bench_gate.py (run as a ctest: bench_gate_selftest).

Covers the gauge-ratio gate (tolerance, min-baseline, metric-prefix),
the coverage-counter rules, and the core-aware scaling rules, by writing
registry-shaped JSON documents to a temp dir and driving
``bench_gate.main(argv)`` directly.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_gate  # noqa: E402


def artifact(meta=None, gauges=None, counters=None, section="scaling"):
    doc = {section: {"counters": counters or {},
                     "gauges": gauges or {},
                     "histograms": {}}}
    if meta is not None:
        doc["meta"] = meta
    return doc


class BenchGateTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return path

    def run_gate(self, extra, base_doc, cand_doc):
        base = self.write("base.json", base_doc)
        cand = self.write("cand.json", cand_doc)
        return bench_gate.main(["--baseline", base, "--candidate", cand]
                               + extra)

    # ---- gauge-ratio gate -------------------------------------------------

    def test_within_tolerance_passes(self):
        base = artifact(gauges={"micro.ns": 100.0})
        cand = artifact(gauges={"micro.ns": 700.0})
        self.assertEqual(self.run_gate(["--max-ratio", "8"], base, cand), 0)

    def test_regression_beyond_tolerance_fails(self):
        base = artifact(gauges={"micro.ns": 100.0})
        cand = artifact(gauges={"micro.ns": 900.0})
        self.assertEqual(self.run_gate(["--max-ratio", "8"], base, cand), 1)

    def test_min_baseline_skips_noise_gauges(self):
        base = artifact(gauges={"micro.ns": 0.4})
        cand = artifact(gauges={"micro.ns": 400.0})
        self.assertEqual(
            self.run_gate(["--max-ratio", "8", "--min-baseline", "1"],
                          base, cand), 0)

    def test_metric_prefix_filters_gauges(self):
        base = artifact(gauges={"micro.ns": 100.0, "other.ns": 1.0})
        cand = artifact(gauges={"micro.ns": 100.0, "other.ns": 99.0})
        self.assertEqual(
            self.run_gate(["--max-ratio", "8",
                           "--metric-prefix", "micro."], base, cand), 0)

    def test_no_shared_gauges_is_an_error(self):
        base = artifact(gauges={"a.ns": 1.0})
        cand = artifact(gauges={"b.ns": 1.0})
        self.assertEqual(self.run_gate(["--max-ratio", "8"], base, cand), 2)

    def test_candidate_only_gauges_are_not_gated(self):
        base = artifact(gauges={"micro.ns": 100.0})
        cand = artifact(gauges={"micro.ns": 100.0, "micro.new": 1e9})
        self.assertEqual(self.run_gate(["--max-ratio", "8"], base, cand), 0)

    # ---- coverage counters ------------------------------------------------

    def test_coverage_shrink_fails(self):
        base = artifact(gauges={"g": 1.0}, counters={"cov.runs": 10})
        cand = artifact(gauges={"g": 1.0}, counters={"cov.runs": 9})
        self.assertEqual(
            self.run_gate(["--max-ratio", "8", "--coverage-prefix", "cov."],
                          base, cand), 1)

    def test_coverage_growth_and_new_keys_pass(self):
        base = artifact(gauges={"g": 1.0}, counters={"cov.runs": 10})
        cand = artifact(gauges={"g": 1.0},
                        counters={"cov.runs": 12, "cov.extra": 1})
        self.assertEqual(
            self.run_gate(["--max-ratio", "8", "--coverage-prefix", "cov."],
                          base, cand), 0)

    def test_coverage_missing_counter_fails(self):
        base = artifact(gauges={"g": 1.0}, counters={"cov.runs": 10})
        cand = artifact(gauges={"g": 1.0}, counters={})
        self.assertEqual(
            self.run_gate(["--max-ratio", "8", "--coverage-prefix", "cov."],
                          base, cand), 1)

    # ---- core-aware scaling rules -----------------------------------------

    def scaling_doc(self, hw, seq=10.0, pool1=10.2, extra=None):
        gauges = {"scaling.seconds.threads.1": seq,
                  "scaling.seconds.pool1": pool1}
        gauges.update(extra or {})
        return artifact(meta={"bench": "bench_scaling", "seed": 1,
                              "threads": 8, "hw_concurrency": hw},
                        gauges=gauges)

    def run_scaling(self, cand_doc, extra=()):
        # Baseline: any doc sharing one gauge so the ratio gate is happy.
        return self.run_gate(["--max-ratio", "1000", "--min-baseline", "0",
                              "--scaling-check"] + list(extra),
                             cand_doc, cand_doc)

    def test_scaling_ok_on_small_box(self):
        doc = self.scaling_doc(
            hw=1, extra={"scaling.seconds.threads.4": 10.5})
        self.assertEqual(self.run_scaling(doc), 0)

    def test_missing_hw_concurrency_fails(self):
        doc = self.scaling_doc(hw=1)
        del doc["meta"]["hw_concurrency"]
        self.assertEqual(self.run_scaling(doc), 1)

    def test_missing_sequential_entry_fails(self):
        doc = self.scaling_doc(hw=1)
        del doc["scaling"]["gauges"]["scaling.seconds.threads.1"]
        self.assertEqual(self.run_scaling(doc), 1)

    def test_pool1_overhead_beyond_ratio_fails(self):
        doc = self.scaling_doc(hw=1, seq=10.0, pool1=11.0)
        self.assertEqual(self.run_scaling(doc), 1)

    def test_missing_pool1_audit_fails(self):
        doc = self.scaling_doc(hw=1)
        del doc["scaling"]["gauges"]["scaling.seconds.pool1"]
        self.assertEqual(self.run_scaling(doc), 1)

    def test_oversubscribed_threads_beyond_ratio_fails(self):
        doc = self.scaling_doc(
            hw=2, extra={"scaling.seconds.threads.4": 11.5})
        self.assertEqual(self.run_scaling(doc), 1)

    def test_threads_within_hw_not_held_to_overhead_ratio(self):
        # 4 threads on a 4-core box may be much faster than sequential --
        # and is judged by the speedup floor, not the overhead ratio.
        doc = self.scaling_doc(
            hw=4, extra={"scaling.seconds.threads.4": 3.0,
                         "scaling.speedup.threads.4": 10.0 / 3.0})
        self.assertEqual(self.run_scaling(doc), 0)

    def test_speedup_floor_enforced_on_big_box(self):
        doc = self.scaling_doc(
            hw=4, extra={"scaling.seconds.threads.4": 8.0,
                         "scaling.speedup.threads.4": 1.25})
        self.assertEqual(self.run_scaling(doc), 1)

    def test_speedup_floor_requires_gauge_on_big_box(self):
        doc = self.scaling_doc(
            hw=8, extra={"scaling.seconds.threads.2": 5.0})
        self.assertEqual(self.run_scaling(doc), 1)

    def test_speedup_floor_skipped_on_small_box(self):
        doc = self.scaling_doc(hw=2)
        self.assertEqual(self.run_scaling(doc), 0)

    def test_speedup_floor_zero_disables(self):
        doc = self.scaling_doc(
            hw=8, extra={"scaling.speedup.threads.4": 1.1})
        self.assertEqual(
            self.run_scaling(doc, extra=["--scaling-floor", "0"]), 0)

    def test_custom_overhead_ratios(self):
        doc = self.scaling_doc(hw=1, seq=10.0, pool1=11.0,
                               extra={"scaling.seconds.threads.4": 12.0})
        self.assertEqual(
            self.run_scaling(doc, extra=["--overhead-pool1", "1.2",
                                         "--overhead-oversub", "1.3"]), 0)


if __name__ == "__main__":
    unittest.main()
