#!/usr/bin/env python3
"""End-to-end engine wall-clock bench: runs the trial-driven benches with
pinned scenario arguments and records their wall-clock seconds in the
repo's registry-shaped metrics JSON, so tools/bench_gate.py can compare a
fresh run against the committed bench/BENCH_engine.json baseline.

The pinned cases are deliberately small (a few seconds total in
RelWithDebInfo) so the artifact is cheap to refresh and cheap to gate;
EXPERIMENTS.md records the full-size before/after numbers separately.
Seeds and --threads are pinned so every run executes the identical
deterministic event sequence — wall-clock is the only free variable.

Usage:
    bench_engine.py --build-dir build [--out BENCH_engine.json]
"""

import argparse
import json
import os
import subprocess
import sys
import time

# (case name, binary, pinned scenario args)
CASES = [
    ("fig9_small",
     "bench/bench_fig9_convergence",
     ["--trees", "8", "--trials", "20", "--seed", "1", "--threads", "1"]),
    ("chaos_small",
     "bench/bench_chaos",
     ["--schedules", "8", "--bursts", "1,2", "--events", "4",
      "--seed", "1", "--threads", "1"]),
]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory with the bench binaries")
    ap.add_argument("--out", default="BENCH_engine.json",
                    help="output metrics JSON path")
    ap.add_argument("--repeat", type=int, default=3,
                    help="runs per case; the minimum wall-clock is kept "
                         "(default: %(default)s)")
    args = ap.parse_args()

    gauges = {}
    for name, rel_bin, case_args in CASES:
        binary = os.path.join(args.build_dir, rel_bin)
        if not os.path.exists(binary):
            print("bench_engine: ERROR: %s not built" % binary)
            return 2
        best = None
        for rep in range(args.repeat):
            start = time.monotonic()
            proc = subprocess.run([binary] + case_args,
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.STDOUT)
            wall = time.monotonic() - start
            if proc.returncode != 0:
                print("bench_engine: ERROR: %s exited %d"
                      % (name, proc.returncode))
                return 1
            best = wall if best is None else min(best, wall)
            print("bench_engine: %s run %d/%d: %.3fs"
                  % (name, rep + 1, args.repeat, wall))
        gauges["engine.%s.wall_seconds" % name] = best
        print("bench_engine: %s best: %.3fs" % (name, best))

    doc = {
        "meta": {"bench": "bench_engine", "seed": 1, "threads": 1},
        "engine": {"counters": {}, "gauges": gauges, "histograms": {}},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("bench_engine: wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
