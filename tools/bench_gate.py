#!/usr/bin/env python3
"""Perf-regression gate over the repo's registry-shaped bench JSON.

Compares a candidate metrics artifact (a fresh bench run) against a
committed baseline and exits non-zero when any shared timing gauge
regressed by more than ``--max-ratio``.  Both files are the shape
``bench_common.hpp::write_metrics_json`` emits::

    {"meta": {...}, "<section>": {"counters": {...}, "gauges": {...},
                                  "histograms": {...}}, ...}

Only gauges are compared (the benches store ns/iter and wall-clock
seconds as gauges); counters and histograms are informational.  Gauges
present on one side only are reported but never fail the gate — adding a
bench must not break CI until the baseline is refreshed (see
bench/README.md for the refresh procedure).

The default tolerance is deliberately loose: committed baselines are
RelWithDebInfo numbers from one machine, while the gate also runs under
ASan/TSan presets where a 10-30x slowdown is normal.  The per-preset
``--max-ratio`` values in tests/CMakeLists.txt are sized so the gate
catches order-of-magnitude regressions (an accidental O(n^2), a debug
container swap) rather than noise.

``--scaling-check`` adds the core-aware scaling rules over the
*candidate* artifact alone (a BENCH_scaling.json).  The artifact stamps
the machine's ``hw_concurrency`` into its meta, and the rules adapt:

* ``scaling.seconds.pool1`` / sequential must stay within
  ``--overhead-pool1`` — the runtime's pure dispatch overhead, on any box.
* every ``scaling.seconds.threads.T`` with T > hw_concurrency must stay
  within ``--overhead-oversub`` of sequential — asking for more threads
  than cores must degrade gracefully, on any box.
* when hw_concurrency >= 4, ``scaling.speedup.threads.4`` must reach
  ``--scaling-floor`` — real parallel speedup, enforced only where the
  cores exist (0 disables the floor, e.g. under sanitizers).

Usage:
    bench_gate.py --baseline bench/BENCH_micro.json \
                  --candidate build/BENCH_micro.json \
                  [--max-ratio 8.0] [--metric-prefix micro.]
    bench_gate.py --baseline bench/BENCH_scaling.json \
                  --candidate build/BENCH_scaling.json \
                  --scaling-check [--scaling-floor 2.5] \
                  [--overhead-pool1 1.05] [--overhead-oversub 1.10]
"""

import argparse
import json
import sys


def load_section(path, metric_prefix, kind):
    """Flattens every section's `kind` metrics into {"section.name": value}."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    flat = {}
    for section, body in doc.items():
        if section == "meta" or not isinstance(body, dict):
            continue
        for name, value in body.get(kind, {}).items():
            if metric_prefix and not name.startswith(metric_prefix):
                continue
            flat["%s.%s" % (section, name)] = float(value)
    return doc.get("meta", {}), flat


def load_gauges(path, metric_prefix):
    return load_section(path, metric_prefix, "gauges")


def check_coverage(baseline, candidate, prefix):
    """Coverage counters (e.g. scenario runs/passes) must never shrink.

    Every baseline counter whose name (within its section) starts with
    `prefix` must exist in the candidate with a value >= the baseline's —
    a refreshed artifact may gain scenario keys freely (candidate-only
    counters are just noted), but dropping a family or running fewer
    seeds of one fails the gate.  Returns a list of failure strings.
    """
    _, base = load_section(baseline, prefix, "counters")
    _, cand = load_section(candidate, prefix, "counters")
    failures = []
    for name in sorted(set(cand) - set(base)):
        print("bench_gate: note: coverage counter %s only in candidate "
              "(not gated)" % name)
    for name in sorted(base):
        if name not in cand:
            failures.append("%s missing from candidate (baseline=%d)"
                            % (name, base[name]))
            continue
        status = "FAIL" if cand[name] < base[name] else "ok"
        print("bench_gate: %-4s coverage %-55s base=%8d cand=%8d"
              % (status, name, base[name], cand[name]))
        if cand[name] < base[name]:
            failures.append("%s shrank (%d -> %d)"
                            % (name, base[name], cand[name]))
    return failures


def check_scaling(candidate, floor, pool1_ratio, oversub_ratio):
    """Core-aware scaling rules over the candidate artifact alone.

    Returns a list of failure strings.  All rules key off the
    hw_concurrency the artifact was produced on, so the same gate
    invocation is correct on a laptop and a many-core CI box.
    """
    meta, gauges = load_section(candidate, "", "gauges")
    failures = []

    hw = meta.get("hw_concurrency")
    if not isinstance(hw, int) or hw < 1:
        return ["meta.hw_concurrency missing from %s -- refresh the "
                "artifact with a current bench build" % candidate]

    seconds = {}   # thread count -> wall seconds
    pool1 = None
    speedup4 = None
    for name, value in gauges.items():
        if ".scaling.seconds.threads." in "." + name:
            try:
                seconds[int(name.rsplit(".", 1)[1])] = value
            except ValueError:
                pass
        elif name.endswith("scaling.seconds.pool1"):
            pool1 = value
        elif name.endswith("scaling.speedup.threads.4"):
            speedup4 = value

    seq = seconds.get(1)
    if seq is None or seq <= 0:
        return ["no sequential entry (scaling.seconds.threads.1) in %s"
                % candidate]

    if pool1 is None:
        failures.append("scaling.seconds.pool1 missing (1-worker pool "
                        "overhead audit did not run)")
    else:
        ratio = pool1 / seq
        status = "FAIL" if ratio > pool1_ratio else "ok"
        print("bench_gate: %-4s scaling pool1/seq %26.3f/%.3f s  "
              "ratio=%6.3f (max %.3f)"
              % (status, pool1, seq, ratio, pool1_ratio))
        if ratio > pool1_ratio:
            failures.append("pool-with-1-thread overhead %.3fx > %.3fx"
                            % (ratio, pool1_ratio))

    for threads in sorted(seconds):
        if threads <= hw:
            continue
        ratio = seconds[threads] / seq
        status = "FAIL" if ratio > oversub_ratio else "ok"
        print("bench_gate: %-4s scaling %d threads on %d core(s) "
              "%11.3f/%.3f s  ratio=%6.3f (max %.3f)"
              % (status, threads, hw, seconds[threads], seq, ratio,
                 oversub_ratio))
        if ratio > oversub_ratio:
            failures.append("oversubscribed %d-thread wall %.3fx > %.3fx "
                            "of sequential" % (threads, ratio,
                                               oversub_ratio))

    if floor > 0 and hw >= 4:
        if speedup4 is None:
            failures.append("hw_concurrency=%d but no "
                            "scaling.speedup.threads.4 gauge" % hw)
        else:
            status = "FAIL" if speedup4 < floor else "ok"
            print("bench_gate: %-4s scaling speedup@4 %21.2fx "
                  "(floor %.2fx, hw=%d)" % (status, speedup4, floor, hw))
            if speedup4 < floor:
                failures.append("speedup at 4 threads %.2fx < floor %.2fx"
                                % (speedup4, floor))
    elif floor > 0:
        print("bench_gate: note: speedup floor skipped "
              "(hw_concurrency=%d < 4)" % hw)
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (e.g. bench/BENCH_micro.json)")
    ap.add_argument("--candidate", required=True,
                    help="freshly generated JSON to check")
    ap.add_argument("--max-ratio", type=float, default=8.0,
                    help="fail when candidate/baseline exceeds this "
                         "(default: %(default)s)")
    ap.add_argument("--metric-prefix", default="",
                    help="only gate gauges whose name (within a section) "
                         "starts with this prefix")
    ap.add_argument("--min-baseline", type=float, default=1.0,
                    help="skip gauges whose baseline value is below this "
                         "(sub-ns noise; default: %(default)s)")
    ap.add_argument("--coverage-prefix", default="",
                    help="additionally require every baseline *counter* "
                         "with this name prefix to be present in the "
                         "candidate with a value >= the baseline's "
                         "(scenario coverage must never shrink)")
    ap.add_argument("--scaling-check", action="store_true",
                    help="additionally apply the core-aware scaling rules "
                         "to the candidate artifact (see module docstring)")
    ap.add_argument("--scaling-floor", type=float, default=2.5,
                    help="with --scaling-check: minimum speedup at 4 "
                         "threads when the candidate machine has >= 4 "
                         "cores; 0 disables (default: %(default)s)")
    ap.add_argument("--overhead-pool1", type=float, default=1.05,
                    help="with --scaling-check: max pool-with-1-thread / "
                         "sequential wall ratio (default: %(default)s)")
    ap.add_argument("--overhead-oversub", type=float, default=1.10,
                    help="with --scaling-check: max oversubscribed-threads "
                         "/ sequential wall ratio (default: %(default)s)")
    args = ap.parse_args(argv)

    base_meta, base = load_gauges(args.baseline, args.metric_prefix)
    cand_meta, cand = load_gauges(args.candidate, args.metric_prefix)

    if base_meta.get("bench") != cand_meta.get("bench"):
        print("bench_gate: warning: meta.bench differs (%r vs %r)"
              % (base_meta.get("bench"), cand_meta.get("bench")))

    shared = sorted(set(base) & set(cand))
    if not shared:
        print("bench_gate: ERROR: no shared gauges between %s and %s"
              % (args.baseline, args.candidate))
        return 2
    for name in sorted(set(base) ^ set(cand)):
        side = "baseline" if name in base else "candidate"
        print("bench_gate: note: %s only in %s (not gated)" % (name, side))

    failures = []
    for name in shared:
        if base[name] < args.min_baseline:
            continue
        ratio = cand[name] / base[name] if base[name] > 0 else float("inf")
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print("bench_gate: %-4s %-60s base=%12.1f cand=%12.1f ratio=%6.2f"
              % (status, name, base[name], cand[name], ratio))
        if ratio > args.max_ratio:
            failures.append((name, ratio))

    coverage_failures = []
    if args.coverage_prefix:
        coverage_failures = check_coverage(args.baseline, args.candidate,
                                           args.coverage_prefix)

    scaling_failures = []
    if args.scaling_check:
        scaling_failures = check_scaling(args.candidate, args.scaling_floor,
                                         args.overhead_pool1,
                                         args.overhead_oversub)

    if failures or coverage_failures or scaling_failures:
        if failures:
            print("bench_gate: FAILED: %d gauge(s) regressed beyond %.1fx:"
                  % (len(failures), args.max_ratio))
            for name, ratio in failures:
                print("bench_gate:   %s (%.2fx)" % (name, ratio))
        for detail in coverage_failures:
            print("bench_gate: FAILED coverage: %s" % detail)
        for detail in scaling_failures:
            print("bench_gate: FAILED scaling: %s" % detail)
        return 1
    print("bench_gate: passed (%d gauges, max-ratio %.1f%s%s)"
          % (len(shared), args.max_ratio,
             ", coverage ok" if args.coverage_prefix else "",
             ", scaling ok" if args.scaling_check else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
