#!/usr/bin/env python3
"""Perf-regression gate over the repo's registry-shaped bench JSON.

Compares a candidate metrics artifact (a fresh bench run) against a
committed baseline and exits non-zero when any shared timing gauge
regressed by more than ``--max-ratio``.  Both files are the shape
``bench_common.hpp::write_metrics_json`` emits::

    {"meta": {...}, "<section>": {"counters": {...}, "gauges": {...},
                                  "histograms": {...}}, ...}

Only gauges are compared (the benches store ns/iter and wall-clock
seconds as gauges); counters and histograms are informational.  Gauges
present on one side only are reported but never fail the gate — adding a
bench must not break CI until the baseline is refreshed (see
bench/README.md for the refresh procedure).

The default tolerance is deliberately loose: committed baselines are
RelWithDebInfo numbers from one machine, while the gate also runs under
ASan/TSan presets where a 10-30x slowdown is normal.  The per-preset
``--max-ratio`` values in tests/CMakeLists.txt are sized so the gate
catches order-of-magnitude regressions (an accidental O(n^2), a debug
container swap) rather than noise.

Usage:
    bench_gate.py --baseline bench/BENCH_micro.json \
                  --candidate build/BENCH_micro.json \
                  [--max-ratio 8.0] [--metric-prefix micro.]
"""

import argparse
import json
import sys


def load_gauges(path, metric_prefix):
    """Flattens every section's gauges into {"section.name": value}."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    gauges = {}
    for section, body in doc.items():
        if section == "meta" or not isinstance(body, dict):
            continue
        for name, value in body.get("gauges", {}).items():
            if metric_prefix and not name.startswith(metric_prefix):
                continue
            gauges["%s.%s" % (section, name)] = float(value)
    return doc.get("meta", {}), gauges


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (e.g. bench/BENCH_micro.json)")
    ap.add_argument("--candidate", required=True,
                    help="freshly generated JSON to check")
    ap.add_argument("--max-ratio", type=float, default=8.0,
                    help="fail when candidate/baseline exceeds this "
                         "(default: %(default)s)")
    ap.add_argument("--metric-prefix", default="",
                    help="only gate gauges whose name (within a section) "
                         "starts with this prefix")
    ap.add_argument("--min-baseline", type=float, default=1.0,
                    help="skip gauges whose baseline value is below this "
                         "(sub-ns noise; default: %(default)s)")
    args = ap.parse_args()

    base_meta, base = load_gauges(args.baseline, args.metric_prefix)
    cand_meta, cand = load_gauges(args.candidate, args.metric_prefix)

    if base_meta.get("bench") != cand_meta.get("bench"):
        print("bench_gate: warning: meta.bench differs (%r vs %r)"
              % (base_meta.get("bench"), cand_meta.get("bench")))

    shared = sorted(set(base) & set(cand))
    if not shared:
        print("bench_gate: ERROR: no shared gauges between %s and %s"
              % (args.baseline, args.candidate))
        return 2
    for name in sorted(set(base) ^ set(cand)):
        side = "baseline" if name in base else "candidate"
        print("bench_gate: note: %s only in %s (not gated)" % (name, side))

    failures = []
    for name in shared:
        if base[name] < args.min_baseline:
            continue
        ratio = cand[name] / base[name] if base[name] > 0 else float("inf")
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print("bench_gate: %-4s %-60s base=%12.1f cand=%12.1f ratio=%6.2f"
              % (status, name, base[name], cand[name], ratio))
        if ratio > args.max_ratio:
            failures.append((name, ratio))

    if failures:
        print("bench_gate: FAILED: %d gauge(s) regressed beyond %.1fx:"
              % (len(failures), args.max_ratio))
        for name, ratio in failures:
            print("bench_gate:   %s (%.2fx)" % (name, ratio))
        return 1
    print("bench_gate: passed (%d gauges, max-ratio %.1f)"
          % (len(shared), args.max_ratio))
    return 0


if __name__ == "__main__":
    sys.exit(main())
